//! Systematic interleaving exploration.
//!
//! The paper's guarantees are quantified over *every* asynchronous schedule
//! (finite but unbounded delays); a handful of seeded random runs samples
//! that space thinly. This module searches it deliberately, in the style of
//! deterministic-simulation testing: a caller-supplied **system factory**
//! builds a fresh run of the system under test for each candidate schedule,
//! drives it against a scheduler the explorer controls and reports whether
//! the run satisfied its properties; the explorer tries many schedules — a
//! bounded **random walk** over seeds plus a depth-bounded **branch-point
//! DFS** that systematically enumerates which pending event fires at each
//! of the first few steps — and, on the first failure, hands back the exact
//! [`Schedule`] so the failure replays forever (and can be
//! [shrunk](crate::shrink)).
//!
//! Two things make the search fast without changing its answers:
//!
//! * **Parallelism** — [`ExploreConfig::jobs`] fans candidate runs out over
//!   `std::thread::scope` workers. Speculative results are merged back in
//!   the exact order the sequential loop would consume them, so reports,
//!   counters and failing schedules are byte-identical at any job count.
//! * **Checkpoint/fork** — systems that implement [`ForkSystem`] (cloneable
//!   state, steppable runs) let the DFS snapshot a run at each branch point
//!   and *fork* a sibling from the deepest cached checkpoint instead of
//!   re-executing the shared prefix from scratch. Enabled by
//!   [`ExploreConfig::checkpoint`]; the paranoid
//!   [`ExploreConfig::verify_snapshots`] debug flag re-executes every run
//!   from scratch as well and panics on any divergence.
//!
//! A third lever, **dynamic partial-order reduction**
//! ([`ExploreConfig::reduce`]), *does* change which schedules run — it
//! prunes interleavings that provably reach states another explored
//! interleaving already covers, so deep searches finish in a fraction of
//! the runs without losing violations. Two mechanisms compose (see
//! `docs/testing.md`):
//!
//! * **Sleep sets** over the dynamic independence relation: each executed
//!   choice's [`Footprint`] (node states read/written, link queues
//!   mutated) is recorded by the runner; sibling branches whose choices
//!   commute with everything separating them are explored once, not once
//!   per order.
//! * **Branch-state dedup**: a canonical [`StateDigest`] of the full run
//!   state (node state, knowledge, in-flight queues, metrics) is taken at
//!   every branch point; a branch node whose (depth, state, pending-set)
//!   key was already expanded is not expanded again.
//!
//! Reduction defaults to [`ReduceMode::None`], which is byte-for-byte the
//! unreduced search.
//!
//! # Example
//!
//! ```
//! use ard_netsim::explore::{explore, ExploreConfig};
//! use ard_netsim::Scheduler;
//!
//! // A "system" whose property always holds: the explorer finds nothing.
//! let report = explore(&ExploreConfig::default(), || |sched: &mut dyn Scheduler| {
//!     let mut r = ard_netsim::explore::fixtures::racy_network(2);
//!     r.enqueue_wake_all(sched);
//!     r.run(sched, 1_000).map_err(|e| e.to_string())?;
//!     Ok(()) // ignore the planted bug: pretend all is well
//! });
//! assert!(report.failure.is_none());
//! assert!(report.runs > 0);
//! ```

use std::collections::HashMap;
use std::sync::Mutex;

use crate::fault::{ByzantinePlan, ChurnPlan, FaultPlan, FaultScheduler};
use crate::par;
use crate::record::{RecordingScheduler, Schedule};
use crate::scheduler::{Choice, Footprint, RandomScheduler, Scheduler, SendToken, StateDigest};
use crate::NodeId;

/// Budget and shape of an exploration.
#[derive(Clone, Debug)]
pub struct ExploreConfig {
    /// Number of random-walk schedules to try first (per-walk seeds are
    /// derived from `seed` by splitmix-style mixing, so adjacent base
    /// seeds never share walks).
    pub random_walks: u64,
    /// Maximum number of DFS schedules to try after the walks.
    pub dfs_budget: u64,
    /// Branch-point depth: the DFS enumerates every combination of "which
    /// pending event fires" for the first `dfs_depth` steps (later steps
    /// fall back to oldest-first).
    pub dfs_depth: usize,
    /// Base seed for the random-walk phase.
    pub seed: u64,
    /// Optional fault plan: every candidate schedule runs under a
    /// [`FaultScheduler`] injecting these faults, so fault choices join
    /// the search space (the random-walk phase re-seeds the fault RNG per
    /// walk; the DFS phase keeps the plan's own seed).
    pub fault: Option<FaultPlan>,
    /// Optional Byzantine plan plus the node count its timeline is sized
    /// for: every candidate schedule runs with the plan attached, so
    /// forgeries, selective silence and stale restarts join the search
    /// space. Unlike `fault`, the plan keeps its own seed in both phases —
    /// callers typically derive property checks (excluded-node sets) from
    /// the plan, which must match the plan the runs actually execute.
    pub byzantine: Option<(ByzantinePlan, usize)>,
    /// Optional churn plan plus the node count its timeline is sized for.
    /// The system factory is responsible for withholding the initial
    /// wake-ups of the plan's joiners, exactly as a driver would.
    pub churn: Option<(ChurnPlan, usize)>,
    /// Worker threads for candidate runs. Results are byte-identical at
    /// any value; `1` (the default) executes everything inline on the
    /// caller's thread with no speculation.
    pub jobs: usize,
    /// Reuse DFS prefixes by forking checkpoints instead of re-executing
    /// them (only effective for [`explore_fork`] systems; the closure
    /// contract of [`explore`] always runs from scratch). On by default;
    /// results are byte-identical either way.
    pub checkpoint: bool,
    /// Debug flag: additionally re-execute every checkpointed DFS run from
    /// scratch and panic if the snapshot-resumed run diverges in result,
    /// recorded schedule or branch counts.
    pub verify_snapshots: bool,
    /// Partial-order reduction applied to the DFS phase (the random-walk
    /// phase is sampling, not enumeration, and is never reduced). The
    /// default, [`ReduceMode::None`], reproduces the unreduced search
    /// byte for byte.
    pub reduce: ReduceMode,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            random_walks: 32,
            dfs_budget: 32,
            dfs_depth: 4,
            seed: 0,
            fault: None,
            byzantine: None,
            churn: None,
            jobs: 1,
            checkpoint: true,
            verify_snapshots: false,
            reduce: ReduceMode::None,
        }
    }
}

/// Partial-order reduction mode for the DFS phase.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ReduceMode {
    /// Full enumeration — every decision path through the branch window is
    /// its own run. The default; all existing reports and schedules are
    /// unchanged under it.
    #[default]
    None,
    /// Sleep-set pruning over the dynamic footprint-derived independence
    /// relation, plus branch-state dedup on canonical state digests.
    /// Prunes only interleavings whose reachable states another explored
    /// interleaving covers; under a fault/Byzantine/churn plan the dedup
    /// arm switches off (timeline state is not captured by the digest) and
    /// sleep sets degrade gracefully via the fault layer's
    /// [`Footprint::everything`] widening.
    Sleep,
}

impl std::fmt::Display for ReduceMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReduceMode::None => write!(f, "none"),
            ReduceMode::Sleep => write!(f, "sleep"),
        }
    }
}

/// Why an exploration stopped.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum StopReason {
    /// Every candidate schedule (within the depth window, after any
    /// reduction) was executed: the search is *complete*, and a clean
    /// report means no violation exists in the explored space.
    #[default]
    FrontierExhausted,
    /// [`ExploreConfig::dfs_budget`] ran out with candidate prefixes still
    /// unexplored: a clean report only covers the schedules that ran.
    BudgetExhausted,
    /// The search stopped at its first property violation.
    Violation,
}

impl std::fmt::Display for StopReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StopReason::FrontierExhausted => write!(f, "frontier exhausted"),
            StopReason::BudgetExhausted => write!(f, "budget exhausted"),
            StopReason::Violation => write!(f, "violation found"),
        }
    }
}

/// Attaches the config's Byzantine and churn plans (when present) to a
/// freshly built fault scheduler — the one place all three scheduler
/// construction sites share.
fn attach_plans<S: Scheduler>(config: &ExploreConfig, sched: FaultScheduler<S>) -> FaultScheduler<S> {
    let sched = match &config.byzantine {
        Some((plan, n)) => sched.with_byzantine(Some(plan.clone()), *n),
        None => sched,
    };
    match &config.churn {
        Some((plan, n)) => sched.with_churn(Some(plan.clone()), *n),
        None => sched,
    }
}

/// Derives the seed of walk `i` from the configured base seed.
///
/// The obvious `base + i` collides across adjacent user seeds (a sweep
/// over bases 0, 1, 2… re-runs almost every walk); instead each walk takes
/// one output of the splitmix64 stream starting at `base`, whose finalizer
/// scatters consecutive states across the whole 64-bit space.
fn walk_seed(base: u64, i: u64) -> u64 {
    let mut z = base.wrapping_add(i.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Where a failing schedule came from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Origin {
    /// Found by the random-walk phase, under this seed.
    RandomWalk {
        /// The (mixed) seed of the failing walk.
        seed: u64,
    },
    /// Found by the DFS phase, with this branch-decision prefix.
    Dfs {
        /// Pending-event index chosen at each of the first steps.
        prefix: Vec<usize>,
    },
}

impl std::fmt::Display for Origin {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Origin::RandomWalk { seed } => write!(f, "random-walk seed={seed}"),
            Origin::Dfs { prefix } => {
                let p: Vec<String> = prefix.iter().map(usize::to_string).collect();
                write!(f, "dfs prefix=[{}]", p.join(","))
            }
        }
    }
}

/// A property violation found during exploration.
#[derive(Clone, Debug)]
pub struct ExploreFailure {
    /// The exact schedule that produced the violation (strict-replayable).
    pub schedule: Schedule,
    /// The property-check failure message.
    pub reason: String,
    /// 0-based index of the failing run within the exploration.
    pub run_index: u64,
    /// Which search phase found it.
    pub origin: Origin,
}

/// Summary of one exploration.
#[derive(Clone, Debug, Default)]
pub struct ExploreReport {
    /// Total schedules executed.
    pub runs: u64,
    /// Schedules executed by the random-walk phase.
    pub random_walks: u64,
    /// Schedules executed by the DFS phase.
    pub dfs_runs: u64,
    /// The first violation found, if any (the exploration stops there).
    pub failure: Option<ExploreFailure>,
    /// Why the search ended. Identical at every job count, like every
    /// other field.
    pub stop: StopReason,
    /// Sibling branches pruned by sleep sets (each would have been the
    /// root of its own DFS subtree). Zero under [`ReduceMode::None`].
    pub sleep_pruned: u64,
    /// Sibling branches pruned because their branch node's
    /// (depth, state-digest, pending-set) key was already expanded. Zero
    /// under [`ReduceMode::None`] or whenever a fault/Byzantine/churn plan
    /// disables the dedup arm.
    pub digest_deduped: u64,
}

/// Arrival-ordered pending set with `O(log n)` order-statistic removal.
///
/// Choices live in an append-only slab in arrival order; a Fenwick tree
/// over liveness bits answers "remove the `i`-th oldest live entry" by
/// binary-lifting descent instead of the `O(n)` shift a `VecDeque::remove`
/// pays. Removal tombstones the slot; the slab compacts (preserving
/// arrival order) once dead slots dominate, keeping memory proportional to
/// the live count.
#[derive(Clone, Debug, Default)]
struct PendingRing {
    /// Arrival-ordered slab; `None` marks a removed entry.
    slots: Vec<Option<Choice>>,
    /// 1-based Fenwick tree over liveness: `fen[i-1]` counts the live
    /// slots in `(i - lowbit(i), i]`.
    fen: Vec<u32>,
    live: usize,
}

impl PendingRing {
    fn len(&self) -> usize {
        self.live
    }

    fn is_empty(&self) -> bool {
        self.live == 0
    }

    fn push(&mut self, choice: Choice) {
        self.slots.push(Some(choice));
        self.live += 1;
        // Appending node `n` to a Fenwick tree: its value is the live
        // count over (n - lowbit(n), n], which is 1 (the new entry) plus
        // the already-computed sums of the nodes tiling the rest of that
        // range.
        let n = self.slots.len();
        let lo = n - (n & n.wrapping_neg());
        let mut v = 1u32;
        let mut m = n - 1;
        while m > lo {
            v += self.fen[m - 1];
            m -= m & m.wrapping_neg();
        }
        self.fen.push(v);
    }

    /// The live choices in arrival order (oldest first).
    fn live_choices(&self) -> impl Iterator<Item = &Choice> {
        self.slots.iter().filter_map(Option::as_ref)
    }

    /// Removes and returns the `rank`-th oldest live choice (0-based).
    fn take(&mut self, rank: usize) -> Choice {
        debug_assert!(rank < self.live, "rank {rank} out of {} live", self.live);
        // Binary-lifting descent: find the largest prefix with live-count
        // < rank + 1; the next slot is the answer.
        let mut remaining = (rank + 1) as u32;
        let mut pos = 0usize;
        let mut step = 1usize << self.fen.len().ilog2();
        while step > 0 {
            let next = pos + step;
            if next <= self.fen.len() && self.fen[next - 1] < remaining {
                remaining -= self.fen[next - 1];
                pos = next;
            }
            step >>= 1;
        }
        self.remove_slot(pos)
    }

    /// Removes the choice with the smallest [`Choice::sort_key`] among the
    /// `k` oldest live entries, ties to the oldest — one step of the
    /// canonical round-based drain the reduced DFS uses past its branch
    /// window.
    fn take_min_of_oldest(&mut self, k: usize) -> Choice {
        debug_assert!(k >= 1 && k <= self.live);
        let mut best: Option<(usize, (u8, u32, u32, u32))> = None;
        let mut seen = 0usize;
        for (pos, slot) in self.slots.iter().enumerate() {
            let Some(choice) = slot else { continue };
            let key = choice.sort_key();
            let better = match &best {
                None => true,
                Some((_, best_key)) => key < *best_key,
            };
            if better {
                best = Some((pos, key));
            }
            seen += 1;
            if seen >= k {
                break;
            }
        }
        let (pos, _) = best.expect("take_min_of_oldest on an empty round");
        self.remove_slot(pos)
    }

    /// Tombstones the live entry at slab position `pos` and returns it.
    fn remove_slot(&mut self, pos: usize) -> Choice {
        let choice = self.slots[pos]
            .take()
            .expect("removal targets a live slot");
        let mut i = pos + 1;
        while i <= self.fen.len() {
            self.fen[i - 1] -= 1;
            i += i & i.wrapping_neg();
        }
        self.live -= 1;
        if self.slots.len() >= 64 && self.live * 2 < self.slots.len() {
            self.compact();
        }
        choice
    }

    /// Drops tombstones, preserving arrival order, and rebuilds the
    /// (now all-live) Fenwick tree, where node `i` covers `lowbit(i)` ones.
    fn compact(&mut self) {
        self.slots.retain(Option::is_some);
        self.fen.clear();
        for i in 1..=self.slots.len() {
            self.fen.push((i & i.wrapping_neg()) as u32);
        }
    }
}

/// A deterministic scheduler steered by a branch-decision prefix.
///
/// Pending events are kept in arrival order. At step `i` the scheduler
/// fires the event at index `prefix[i]` (clamped to the pending count);
/// past the prefix it fires the oldest pending event, i.e. degenerates to
/// global FIFO. While running it records how many events were pending at
/// each of the first `depth` steps — the branching factors the DFS driver
/// uses to enumerate sibling schedules.
///
/// Cloning captures the full state (pending events, position on the
/// decision path, branch counts) — a clone is a checkpoint the DFS can
/// later resume with a deeper prefix via [`DfsScheduler::set_prefix`].
///
/// In **reduce mode** ([`DfsScheduler::reduced`]) the scheduler
/// additionally records, at every branch point, the pending choices, the
/// runner's pre-decision state digest and the footprint of the steps the
/// decision executed — the observations the engine's sleep-set and dedup
/// logic runs on — and past the branch window it drains pending events in
/// a canonical order (a function of the pending *set*, not arrival order),
/// so interleaving-equivalent prefixes converge to identical terminal
/// states.
#[derive(Clone, Debug)]
pub struct DfsScheduler {
    pending: PendingRing,
    prefix: Vec<usize>,
    depth: usize,
    step: usize,
    branch_counts: Vec<usize>,
    /// Reduce mode: record [`BranchObs`] and drain the tail canonically.
    reduce: bool,
    branch_obs: Vec<BranchObs>,
    /// The most recent runner state digest reported before a `choose`.
    last_digest: u64,
    /// Live entries left in the current canonical-drain round; `0` starts
    /// a new round on the next tail decision.
    round_live: usize,
}

/// Everything the reduction engine needs to know about one branch-point
/// decision, recorded by a reduce-mode [`DfsScheduler`] as the run
/// executes.
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct BranchObs {
    /// The pending choices at the decision, in arrival (rank) order — the
    /// enabled set the DFS enumerates children over.
    pub pending: Vec<Choice>,
    /// Canonical runner state digest immediately before the decision.
    pub digest: u64,
    /// Merged exact footprints of every step executed from this decision
    /// up to (exclusive) the next one: the decided choice itself plus any
    /// steps a fault layer served in between (those arrive pre-widened to
    /// [`Footprint::everything`]).
    pub fp: Footprint,
}

impl DfsScheduler {
    /// A scheduler following `prefix`, recording branch counts for the
    /// first `depth` steps.
    pub fn new(prefix: Vec<usize>, depth: usize) -> Self {
        DfsScheduler {
            pending: PendingRing::default(),
            prefix,
            depth,
            step: 0,
            branch_counts: Vec::new(),
            reduce: false,
            branch_obs: Vec::new(),
            last_digest: 0,
            round_live: 0,
        }
    }

    /// A scheduler like [`DfsScheduler::new`] that also records the
    /// per-branch observations partial-order reduction needs and drains
    /// canonically past the branch window.
    pub fn reduced(prefix: Vec<usize>, depth: usize) -> Self {
        DfsScheduler {
            reduce: true,
            ..Self::new(prefix, depth)
        }
    }

    /// Pending-event counts observed at each of the first `depth` steps.
    pub fn branch_counts(&self) -> &[usize] {
        &self.branch_counts
    }

    /// The reduce-mode branch observations (empty outside reduce mode).
    pub(crate) fn branch_obs(&self) -> &[BranchObs] {
        &self.branch_obs
    }

    /// Number of scheduling decisions made so far — the run's position on
    /// its branch-decision path.
    pub fn decisions(&self) -> usize {
        self.step
    }

    /// Retargets the branch-decision prefix without touching any other
    /// state. This is how a checkpoint cloned at decision `d` is pointed
    /// at a deeper sibling prefix before resuming: the first `d` decisions
    /// of the new prefix must match the path already taken.
    pub fn set_prefix(&mut self, prefix: Vec<usize>) {
        self.prefix = prefix;
    }
}

impl Scheduler for DfsScheduler {
    fn note_wake(&mut self, node: NodeId) {
        self.pending.push(Choice::Wake(node));
    }
    fn note_send(&mut self, token: SendToken) {
        self.pending.push(Choice::Deliver {
            src: token.src,
            dst: token.dst,
        });
    }
    fn note_tick(&mut self, node: NodeId) {
        self.pending.push(Choice::Tick(node));
    }
    fn choose(&mut self) -> Option<Choice> {
        if self.pending.is_empty() {
            return None;
        }
        if self.step >= self.depth && self.reduce {
            // Canonical tail: past the branch window, drain in rounds. A
            // round snapshots the pending count at its start and serves
            // those entries smallest-sort-key first; events arriving
            // during a round wait for the next one (fair — a tick cascade
            // cannot starve older events). The order is a function of the
            // pending set and the arrivals it generates, not of the
            // arrival order the branch decisions happened to produce, so
            // equivalent prefixes converge to identical terminal states.
            if self.round_live == 0 {
                self.round_live = self.pending.len();
            }
            let k = self.round_live;
            self.round_live -= 1;
            self.step += 1;
            return Some(self.pending.take_min_of_oldest(k));
        }
        if self.step < self.depth {
            self.branch_counts.push(self.pending.len());
            if self.reduce {
                self.branch_obs.push(BranchObs {
                    pending: self.pending.live_choices().copied().collect(),
                    digest: self.last_digest,
                    fp: Footprint::new(),
                });
            }
        }
        let want = self.prefix.get(self.step).copied().unwrap_or(0);
        let idx = want.min(self.pending.len() - 1);
        self.step += 1;
        Some(self.pending.take(idx))
    }
    fn pending(&self) -> usize {
        self.pending.len()
    }
    fn wants_footprints(&self) -> bool {
        self.reduce
    }
    fn note_footprint(&mut self, _choice: Choice, footprint: &Footprint) {
        // Attribute the executed step to the decision currently in flight:
        // after decision `j` executes, `step == j + 1`, and any
        // fault-layer-served steps before decision `j + 1` still land
        // here. Steps outside the branch window (or before the first
        // decision) have no observation to extend.
        if let Some(obs) = self.step.checked_sub(1).and_then(|j| self.branch_obs.get_mut(j)) {
            obs.fp.merge(footprint);
        }
    }
    fn wants_state_digest(&self) -> bool {
        self.reduce && self.step < self.depth
    }
    fn note_state_digest(&mut self, digest: u64) {
        self.last_digest = digest;
    }
}

/// A system under exploration that supports **checkpoint/fork** prefix
/// reuse: instead of a run-to-completion closure, the system exposes a
/// steppable, cloneable run, so the DFS can snapshot it at a branch point
/// and fork siblings from the snapshot rather than re-executing the shared
/// prefix. Protocols get this for free from their existing `Clone`able
/// state (see [`fixtures::RacySystem`]).
pub trait ForkSystem: Sync {
    /// Builds a fresh run: constructs the system and enqueues its initial
    /// events (wake-ups) into `sched`, without executing anything yet.
    fn spawn(&self, sched: &mut dyn Scheduler) -> Box<dyn ForkRun>;
}

/// One in-flight run of a [`ForkSystem`].
pub trait ForkRun: Send {
    /// Deep-copies the run state — the snapshot the DFS forks from.
    fn fork(&self) -> Box<dyn ForkRun>;

    /// Executes at most one scheduler choice. `Ok(true)` means one event
    /// executed, `Ok(false)` means the run is complete (quiescent or out
    /// of budget with nothing pending), `Err` means it failed mid-run
    /// (e.g. a livelock report).
    fn step(&mut self, sched: &mut dyn Scheduler) -> Result<bool, String>;

    /// The property check applied once a run completes.
    ///
    /// # Errors
    ///
    /// Returns the violation description as `Err`.
    fn check(&mut self) -> Result<(), String>;

    /// The canonical digest of the run's current state (see
    /// [`Runner::state_digest`](crate::Runner::state_digest)), if the
    /// system exposes one. The reduced explorer stamps it on failing
    /// schedules as `terminal-digest` meta; the default `None` keeps
    /// digest-less systems working, at the cost of that meta.
    fn state_digest(&self) -> Option<u64> {
        None
    }
}

/// Drives a [`ForkSystem`] run to completion under `sched` and applies its
/// property check — the run-to-completion equivalent of the `run_one`
/// closures passed to [`explore`].
///
/// # Errors
///
/// Returns the violation description (or a mid-run failure such as a
/// livelock report) as `Err`.
pub fn run_fork_system(system: &dyn ForkSystem, sched: &mut dyn Scheduler) -> Result<(), String> {
    let mut run = system.spawn(sched);
    let result = loop {
        match run.step(sched) {
            Ok(true) => {}
            Ok(false) => break run.check(),
            Err(err) => break Err(err),
        }
    };
    // Report the terminal digest even when the run failed: the shrinker
    // and the replay tooling read it off a recording wrapper to compare
    // terminal states of minimized schedules.
    if sched.wants_terminal_digest() {
        if let Some(digest) = run.state_digest() {
            sched.note_terminal_digest(digest);
        }
    }
    result
}

/// Internal bridge between the two ways a system can be executed: as a
/// factory-built closure (run to completion only) or as a forkable run.
/// `run_full` also reports the terminal state digest when the execution
/// path exposes one (forkable runs via [`ForkRun::state_digest`]; closures
/// via whatever the recording wrapper captured, which the caller reads).
trait Exec: Sync {
    fn run_full(&self, sched: &mut dyn Scheduler) -> (Result<(), String>, Option<u64>);
    fn forkable(&self) -> bool;
    fn spawn_fork(&self, sched: &mut dyn Scheduler) -> Option<Box<dyn ForkRun>>;
}

struct FactoryExec<'a, F>(&'a F);

impl<F, R> Exec for FactoryExec<'_, F>
where
    F: Fn() -> R + Sync,
    R: FnMut(&mut dyn Scheduler) -> Result<(), String>,
{
    fn run_full(&self, sched: &mut dyn Scheduler) -> (Result<(), String>, Option<u64>) {
        let mut run_one = (self.0)();
        (run_one(sched), None)
    }
    fn forkable(&self) -> bool {
        false
    }
    fn spawn_fork(&self, _sched: &mut dyn Scheduler) -> Option<Box<dyn ForkRun>> {
        None
    }
}

struct ForkExec<'a>(&'a dyn ForkSystem);

impl Exec for ForkExec<'_> {
    fn run_full(&self, sched: &mut dyn Scheduler) -> (Result<(), String>, Option<u64>) {
        let mut run = self.0.spawn(sched);
        let result = loop {
            match run.step(sched) {
                Err(reason) => break Err(reason),
                Ok(false) => break run.check(),
                Ok(true) => {}
            }
        };
        (result, run.state_digest())
    }
    fn forkable(&self) -> bool {
        true
    }
    fn spawn_fork(&self, sched: &mut dyn Scheduler) -> Option<Box<dyn ForkRun>> {
        Some(self.0.spawn(sched))
    }
}

/// Searches schedules for a property violation.
///
/// `factory` builds one `run_one` closure per candidate schedule; each
/// closure must construct the system under test *from scratch*, drive it
/// with the given scheduler and return `Err(reason)` on any property
/// violation (requirements, budgets, livelock, a fixture invariant, …).
/// Determinism of the runs given the choice sequence is what makes the
/// returned schedule replayable. The factory is shared across worker
/// threads (hence `Sync`); with [`ExploreConfig::jobs`] `> 1` candidate
/// runs execute speculatively in parallel, but outcomes are consumed in
/// the exact sequential order, so the report, counters and any failing
/// schedule are byte-identical at every job count.
///
/// The search runs `config.random_walks` seeded random schedules, then up
/// to `config.dfs_budget` DFS schedules enumerating the first
/// `config.dfs_depth` branch points, and stops at the first failure. Every
/// run is recorded, so the failing schedule comes back verbatim with
/// `origin` and `reason` metadata attached.
///
/// Systems with cloneable state can use [`explore_fork`] instead, which
/// additionally reuses shared DFS prefixes via checkpoint/fork.
pub fn explore<F, R>(config: &ExploreConfig, factory: F) -> ExploreReport
where
    F: Fn() -> R + Sync,
    R: FnMut(&mut dyn Scheduler) -> Result<(), String>,
{
    explore_engine(config, &FactoryExec(&factory))
}

/// [`explore`] for [`ForkSystem`] implementors: identical search order and
/// results, but with [`ExploreConfig::checkpoint`] enabled the DFS phase
/// forks each run from the deepest cached branch-point snapshot instead of
/// re-executing its shared prefix from scratch.
pub fn explore_fork(config: &ExploreConfig, system: &dyn ForkSystem) -> ExploreReport {
    explore_engine(config, &ForkExec(system))
}

/// Outcome of one executed candidate prefix, cached until the sequential
/// consumption order reaches it.
struct PrefixOutcome {
    result: Result<(), String>,
    schedule: Schedule,
    branch_counts: Vec<usize>,
    /// Reduce-mode branch observations (empty otherwise).
    branch_obs: Vec<BranchObs>,
    /// Terminal state digest, when the execution path captured one
    /// (reduce mode only — the walk is free, the digest is not).
    terminal_digest: Option<u64>,
}

/// Canonical digest of a branch node's pending *set*: sorted sort keys, so
/// arrival-order differences between equivalent prefixes don't split the
/// dedup key.
fn pending_set_hash(pending: &[Choice]) -> u64 {
    let mut keys: Vec<(u8, u32, u32, u32)> = pending.iter().map(Choice::sort_key).collect();
    keys.sort_unstable();
    let mut d = StateDigest::new();
    d.mix(keys.len() as u64);
    for (tag, a, b, c) in keys {
        d.mix(u64::from(tag));
        d.mix(u64::from(a));
        d.mix(u64::from(b));
        d.mix(u64::from(c));
    }
    d.finish()
}

/// Whether every choice in `a` also appears in `b` (multiset-insensitive —
/// sleep sets never hold duplicates worth distinguishing).
fn sleep_subset(a: &[Choice], b: &[Choice]) -> bool {
    a.iter().all(|u| b.contains(u))
}

/// A branch-point snapshot: the forkable run plus its full scheduler
/// stack, cloned immediately before the decision that completes the key's
/// decision path.
struct Checkpoint {
    run: Box<dyn ForkRun>,
    sched: RecordingScheduler<FaultScheduler<DfsScheduler>>,
}

fn explore_engine(config: &ExploreConfig, exec: &dyn Exec) -> ExploreReport {
    let jobs = config.jobs.max(1);
    let mut report = ExploreReport::default();

    // Phase 1: bounded random walk over mixed seeds. The fault wrapper is
    // applied unconditionally (it is transparent without a plan); with a
    // plan, each walk also re-seeds the fault RNG so the walk phase
    // explores fault placements, not just interleavings. Walks execute in
    // index-ordered batches: workers run them speculatively, the merge
    // consumes them in order and stops at the first failure, exactly like
    // the sequential loop.
    let mut next_walk = 0u64;
    while next_walk < config.random_walks {
        let remaining = config.random_walks - next_walk;
        let batch = if jobs <= 1 {
            1
        } else {
            remaining.min(jobs as u64 * 4)
        };
        let indices: Vec<u64> = (next_walk..next_walk + batch).collect();
        let outcomes = par::parallel_map(jobs, indices, |i| {
            let seed = walk_seed(config.seed, i);
            let fault_seed = config.fault.as_ref().map_or(0, |p| p.seed ^ seed);
            let mut sched = RecordingScheduler::new(attach_plans(
                config,
                FaultScheduler::seeded(
                    RandomScheduler::seeded(seed),
                    config.fault.clone(),
                    fault_seed,
                ),
            ));
            let (result, digest) = exec.run_full(&mut sched);
            let digest = digest.or_else(|| sched.terminal_digest());
            (seed, result, digest, sched.into_schedule())
        });
        for (seed, result, digest, schedule) in outcomes {
            report.random_walks += 1;
            report.runs += 1;
            if let Err(reason) = result {
                report.stop = StopReason::Violation;
                report.failure = Some(failure(
                    schedule,
                    reason,
                    report.runs - 1,
                    Origin::RandomWalk { seed },
                    if config.reduce == ReduceMode::Sleep { digest } else { None },
                ));
                return report;
            }
        }
        next_walk += batch;
    }

    // Phase 2: depth-bounded branch-point DFS. A run with prefix `p`
    // implicitly decides index 0 at every step past `p`, so the children
    // enqueued after running `p` are exactly the prefixes
    // `p + [0]*k + [i]` (`i ≥ 1`, within the observed branching factor):
    // every decision path through the first `dfs_depth` steps is generated
    // exactly once.
    //
    // Parallelism never reorders the search: workers speculatively execute
    // *waves* of prefixes already sitting on the stack (execution of a
    // prefix is a pure function of the prefix), the outcomes land in a
    // cache, and this loop then replays the exact sequential pop / count /
    // push-children discipline against the cache — so the stack evolution,
    // run counters and first failure match the sequential engine choice
    // for choice. Speculative runs past a failure or the budget are
    // discarded unconsumed.
    let reduce = config.reduce == ReduceMode::Sleep;
    // Branch-state dedup matches nodes purely on (depth, runner state,
    // pending set). Fault, Byzantine and churn plans carry extra run state
    // the digest cannot see (RNG positions, timeline cursors), so with any
    // plan attached the dedup arm switches off; sleep sets stay on and
    // degrade via the fault layer's footprint widening.
    let dedup = reduce
        && config.fault.is_none()
        && config.byzantine.is_none()
        && config.churn.is_none();
    // Branch nodes already expanded, by dedup key; the values are the
    // sleep sets they were expanded under (an equivalent node is covered
    // only by an expansion that slept no *more* than it would).
    let mut seen: HashMap<(usize, u64, u64), Vec<Vec<Choice>>> = HashMap::new();

    let checkpoints: Mutex<HashMap<Vec<usize>, Checkpoint>> = Mutex::new(HashMap::new());
    let mut cache: HashMap<Vec<usize>, PrefixOutcome> = HashMap::new();
    // Stack entries pair each candidate prefix with the sleep set of the
    // branch node it starts from (always empty outside reduce mode, and
    // irrelevant to *executing* the prefix — only child generation reads
    // it, in this sequential loop, which keeps every job count
    // byte-identical).
    let mut stack: Vec<(Vec<usize>, Vec<Choice>)> = vec![(Vec::new(), Vec::new())];
    while report.dfs_runs < config.dfs_budget {
        let Some((prefix, sleep0)) = stack.pop() else { break };
        if !cache.contains_key(&prefix) {
            let remaining = (config.dfs_budget - report.dfs_runs) as usize;
            // Speculation-debt throttle: a speculated outcome is only
            // *useful* once the sequential order consumes it, and during a
            // deep dive freshly-pushed children keep preempting the
            // speculated stack entries. Capping the number of cached
            // outcomes bounds how much speculative work can sit unconsumed
            // (and be discarded at budget exhaustion); a throttled wave
            // degenerates to the popped prefix alone, which runs inline.
            let headroom = (jobs * 4).saturating_sub(cache.len());
            let wave_cap = if jobs <= 1 {
                1
            } else {
                (jobs * 4).min(remaining).min(1 + headroom)
            };
            let mut targets: Vec<Vec<usize>> = vec![prefix.clone()];
            for (p, _) in stack.iter().rev() {
                if targets.len() >= wave_cap {
                    break;
                }
                if !cache.contains_key(p) {
                    targets.push(p.clone());
                }
            }
            let outcomes = par::parallel_map(jobs, targets.clone(), |p| {
                run_prefix(exec, config, &p, &checkpoints)
            });
            for (p, outcome) in targets.into_iter().zip(outcomes) {
                cache.insert(p, outcome);
            }
        }
        let outcome = cache.remove(&prefix).expect("wave cached the popped prefix");
        report.dfs_runs += 1;
        report.runs += 1;
        if let Err(reason) = outcome.result {
            report.stop = StopReason::Violation;
            report.failure = Some(failure(
                outcome.schedule,
                reason,
                report.runs - 1,
                Origin::Dfs { prefix },
                if reduce { outcome.terminal_digest } else { None },
            ));
            return report;
        }
        let counts = &outcome.branch_counts;
        if !reduce {
            // Reverse push order so the stack pops children in
            // lexicographic (earliest-position, smallest-index) order.
            for j in (prefix.len()..counts.len()).rev() {
                for i in (1..counts[j]).rev() {
                    let mut child = Vec::with_capacity(j + 1);
                    child.extend_from_slice(&prefix);
                    child.resize(j, 0);
                    child.push(i);
                    stack.push((child, Vec::new()));
                }
            }
            continue;
        }
        // Reduced child generation: walk this run's leftmost branch path,
        // evolving the sleep set along each executed edge (Godefroid-style
        // — a slept choice is one whose subtree an earlier sibling's
        // subtree provably covers).
        let obs = &outcome.branch_obs;
        debug_assert_eq!(obs.len(), counts.len(), "one observation per branch");
        let mut sleep = sleep0;
        let mut children: Vec<(Vec<usize>, Vec<Choice>)> = Vec::new();
        'walk: for j in prefix.len()..counts.len() {
            let ob = &obs[j];
            let siblings = counts[j].saturating_sub(1) as u64;
            let deeper = |from: usize| -> u64 {
                (from..counts.len()).map(|jj| counts[jj].saturating_sub(1) as u64).sum()
            };
            if dedup {
                let key = (j, ob.digest, pending_set_hash(&ob.pending));
                let entry = seen.entry(key).or_default();
                if entry.iter().any(|s| sleep_subset(s, &sleep)) {
                    // An equivalent branch node (same depth, same runner
                    // state, same pending set) was already expanded while
                    // sleeping a subset of what this one would: its
                    // subtree covers everything reachable from here.
                    report.digest_deduped += siblings + deeper(j + 1);
                    break 'walk;
                }
                entry.push(sleep.clone());
            }
            // The choice this run executed at the branch (rank 0 — the
            // leftmost continuation) and its alternatives.
            let c0 = ob.pending[0];
            let c0_slept = sleep.contains(&c0);
            let mut done: Vec<Choice> = vec![c0];
            for i in 1..counts[j] {
                let ci = ob.pending[i];
                if sleep.contains(&ci) || done.contains(&ci) {
                    report.sleep_pruned += 1;
                    continue;
                }
                // The sibling's subtree starts by executing `ci`; it
                // inherits every slept-or-already-explored choice that
                // commutes with `ci` (may-footprints on both sides — the
                // sibling hasn't executed, so no exact footprint exists).
                let ci_fp = Footprint::may(ci);
                let child_sleep: Vec<Choice> = sleep
                    .iter()
                    .chain(done.iter())
                    .filter(|u| !Footprint::may(**u).conflicts(&ci_fp))
                    .copied()
                    .collect();
                let mut child = Vec::with_capacity(j + 1);
                child.extend_from_slice(&prefix);
                child.resize(j, 0);
                child.push(i);
                children.push((child, child_sleep));
                done.push(ci);
            }
            if c0_slept {
                // The whole leftmost subtree below this node is covered
                // elsewhere (this run itself already executed, harmlessly);
                // its deeper branch nodes need no children of their own.
                report.sleep_pruned += deeper(j + 1);
                break 'walk;
            }
            // Advance along the executed edge: survivors are the slept
            // choices that commute with everything this decision actually
            // touched (its exact footprint, plus any fault-layer steps
            // merged in pre-widened).
            sleep.retain(|u| !Footprint::may(*u).conflicts(&ob.fp));
        }
        // Reverse push order so the stack pops children in lexicographic
        // (earliest-position, smallest-index) order.
        for child in children.into_iter().rev() {
            stack.push(child);
        }
    }
    if report.failure.is_none() {
        report.stop = if stack.is_empty() {
            StopReason::FrontierExhausted
        } else {
            StopReason::BudgetExhausted
        };
    }
    report
}

/// Executes one DFS candidate prefix and returns its outcome.
///
/// Forkable systems resume from the deepest cached checkpoint on the
/// prefix's decision path (when `config.checkpoint` allows); everything
/// else runs from scratch. Either way the outcome is identical — which
/// `config.verify_snapshots` double-checks by also running from scratch.
fn run_prefix(
    exec: &dyn Exec,
    config: &ExploreConfig,
    prefix: &[usize],
    checkpoints: &Mutex<HashMap<Vec<usize>, Checkpoint>>,
) -> PrefixOutcome {
    if config.checkpoint && exec.forkable() {
        let out = run_prefix_forked(exec, config, prefix, checkpoints, true);
        if config.verify_snapshots {
            let scratch = run_prefix_forked(exec, config, prefix, checkpoints, false);
            assert!(
                scratch.result == out.result
                    && scratch.schedule == out.schedule
                    && scratch.branch_counts == out.branch_counts
                    && scratch.branch_obs == out.branch_obs
                    && scratch.terminal_digest == out.terminal_digest,
                "snapshot/replay divergence at dfs prefix {prefix:?}:\n\
                 resumed:  {:?} / {:?} / {:?} / {}\n\
                 scratch:  {:?} / {:?} / {:?} / {}",
                out.result,
                out.branch_counts,
                out.terminal_digest,
                out.schedule.to_text(),
                scratch.result,
                scratch.branch_counts,
                scratch.terminal_digest,
                scratch.schedule.to_text(),
            );
        }
        return out;
    }
    let dfs = if config.reduce == ReduceMode::Sleep {
        DfsScheduler::reduced(prefix.to_vec(), config.dfs_depth)
    } else {
        DfsScheduler::new(prefix.to_vec(), config.dfs_depth)
    };
    let mut sched = RecordingScheduler::new(attach_plans(
        config,
        FaultScheduler::new(dfs, config.fault.clone()),
    ));
    let (result, digest) = exec.run_full(&mut sched);
    let terminal_digest = if config.reduce == ReduceMode::Sleep {
        digest.or_else(|| sched.terminal_digest())
    } else {
        None
    };
    let (fault_sched, schedule) = sched.into_parts();
    PrefixOutcome {
        result,
        schedule,
        branch_counts: fault_sched.inner().branch_counts().to_vec(),
        branch_obs: fault_sched.inner().branch_obs().to_vec(),
        terminal_digest,
    }
}

/// The checkpoint/fork execution path for one DFS prefix.
///
/// With `reuse`, the run starts from the deepest checkpoint whose key is a
/// proper prefix of this run's decision path, and snapshots every new
/// branch point it passes (decision positions in `[prefix.len(), depth)`
/// with more than one pending event — exactly the positions children fork
/// at). Without `reuse` it executes from scratch and stores nothing (the
/// comparison arm of the snapshot-equivalence check).
fn run_prefix_forked(
    exec: &dyn Exec,
    config: &ExploreConfig,
    prefix: &[usize],
    checkpoints: &Mutex<HashMap<Vec<usize>, Checkpoint>>,
    reuse: bool,
) -> PrefixOutcome {
    let depth = config.dfs_depth;
    // A run with prefix `p` at decision `d ≥ p.len()` sits on decision
    // path `p ++ [0] * (d - p.len())`: that path is the checkpoint key.
    let key_for = |d: usize| -> Vec<usize> {
        let mut key = prefix.to_vec();
        key.resize(d, 0);
        key
    };

    let mut resumed = None;
    if reuse && !prefix.is_empty() {
        let map = checkpoints.lock().expect("checkpoint map lock");
        for cut in (0..prefix.len()).rev() {
            if let Some(cp) = map.get(&prefix[..cut]) {
                let mut sched = cp.sched.clone();
                sched.inner_mut().inner_mut().set_prefix(prefix.to_vec());
                resumed = Some((cp.run.fork(), sched));
                break;
            }
        }
    }
    let (mut run, mut sched) = match resumed {
        Some(state) => state,
        None => {
            let dfs = if config.reduce == ReduceMode::Sleep {
                DfsScheduler::reduced(prefix.to_vec(), depth)
            } else {
                DfsScheduler::new(prefix.to_vec(), depth)
            };
            let mut sched = RecordingScheduler::new(attach_plans(
                config,
                FaultScheduler::new(dfs, config.fault.clone()),
            ));
            let run = exec
                .spawn_fork(&mut sched)
                .expect("forked execution requires a forkable system");
            (run, sched)
        }
    };

    let result = loop {
        let d = sched.inner().inner().decisions();
        // Snapshot *before* the step that would complete decision path
        // `key_for(d)`: a sibling resuming here replays that decision
        // under its own prefix. Only positions children can fork at
        // (within this run's new suffix, under the depth, with an actual
        // branch) are worth keeping, and only the first run through a
        // given path stores it.
        let mut snapshot = None;
        if reuse && d >= prefix.len() && d < depth && sched.inner().inner().pending() > 1 {
            let key = key_for(d);
            let present = checkpoints
                .lock()
                .expect("checkpoint map lock")
                .contains_key(&key);
            if !present {
                snapshot = Some((
                    key,
                    Checkpoint {
                        run: run.fork(),
                        sched: sched.clone(),
                    },
                ));
            }
        }
        match run.step(&mut sched) {
            Err(reason) => break Err(reason),
            Ok(false) => break run.check(),
            Ok(true) => {
                if let Some((key, checkpoint)) = snapshot {
                    // Only keep the snapshot if this step really consumed
                    // a DFS decision (the choice could have been served by
                    // the fault layer instead).
                    if sched.inner().inner().decisions() == d + 1 {
                        checkpoints
                            .lock()
                            .expect("checkpoint map lock")
                            .entry(key)
                            .or_insert(checkpoint);
                    }
                }
            }
        }
    };
    let terminal_digest = if config.reduce == ReduceMode::Sleep {
        run.state_digest()
    } else {
        None
    };
    let (fault_sched, schedule) = sched.into_parts();
    PrefixOutcome {
        result,
        schedule,
        branch_counts: fault_sched.inner().branch_counts().to_vec(),
        branch_obs: fault_sched.inner().branch_obs().to_vec(),
        terminal_digest,
    }
}

fn failure(
    mut schedule: Schedule,
    reason: String,
    run_index: u64,
    origin: Origin,
    terminal_digest: Option<u64>,
) -> ExploreFailure {
    schedule.set_meta("origin", origin.to_string());
    schedule.set_meta("reason", reason.replace('\n', " "));
    if let Some(digest) = terminal_digest {
        schedule.set_meta("terminal-digest", format!("{digest:016x}"));
    }
    ExploreFailure {
        schedule,
        reason,
        run_index,
        origin,
    }
}

pub mod fixtures {
    //! Deliberately buggy protocols for exercising the explorer and
    //! shrinker — test fixtures, not part of the discovery reproduction.
    //!
    //! [`RacyNode`] plants a classic ordering bug: clients race their
    //! requests to a coordinator that implicitly assumes the lowest-id
    //! client's request always arrives first. Benign schedules (global
    //! FIFO over index-ordered wake-ups) never violate the assumption;
    //! an adversarial schedule that wakes the highest-id client early and
    //! rushes its message through does — which is exactly the kind of
    //! corner [`explore`](super::explore) exists to find and
    //! [`shrink`](crate::shrink) to minimize.
    //!
    //! Both fixtures are exposed two ways: as `run_one`-style closures
    //! ([`run_racy`], [`run_fragile`]) and as checkpointable
    //! [`ForkSystem`]s ([`RacySystem`], [`FragileSystem`]) whose runs the
    //! explorer's DFS can snapshot and fork. The closure forms are thin
    //! wrappers over the fork forms, so both execute identically.

    use super::{ForkRun, ForkSystem};
    use crate::envelope::Envelope;
    use crate::runner::{LivelockError, Protocol, Runner};
    use crate::scheduler::{Scheduler, StateDigest};
    use crate::{Context, NodeId};

    /// The step budget both fixtures run under before declaring a
    /// livelock, matching the original `Runner::run(sched, 10_000)` call.
    const FIXTURE_STEP_BUDGET: u64 = 10_000;

    /// One bounded step of a fixture run: mirrors `Runner::run`'s loop —
    /// `Ok(true)` after executing an event, `Ok(false)` at quiescence (or
    /// at an exhausted budget with nothing pending), and the exact
    /// livelock error `Runner::run` would produce otherwise.
    fn fixture_step<P: Protocol>(
        runner: &mut Runner<P>,
        steps: &mut u64,
        sched: &mut dyn Scheduler,
    ) -> Result<bool, String> {
        if *steps >= FIXTURE_STEP_BUDGET {
            return if sched.pending() == 0 {
                Ok(false)
            } else {
                Err(format!(
                    "fixture livelocked: {}",
                    LivelockError {
                        steps: *steps,
                        pending: sched.pending(),
                    }
                ))
            };
        }
        if runner.step(sched) {
            *steps += 1;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// The fixture's only message: a client's request for the lease.
    #[derive(Clone, Debug)]
    pub struct Request;

    impl Envelope for Request {
        fn kind(&self) -> &'static str {
            "request"
        }
        fn for_each_carried_id(&self, _f: &mut dyn FnMut(NodeId)) {}
        fn aux_bits(&self) -> u64 {
            0
        }
    }

    /// One node of the planted-bug network: node 0 is the coordinator,
    /// every other node a client that requests a lease on wake-up.
    ///
    /// The planted bug: the coordinator grants the lease to the *first*
    /// request it receives, written against the (wrong) assumption that
    /// requests arrive in client-id order — so a schedule in which the
    /// highest-id client's request arrives first hands the lease to a
    /// client the coordinator's bookkeeping believes cannot hold it.
    #[derive(Clone, Debug)]
    pub enum RacyNode {
        /// The coordinator: remembers who was granted the lease.
        Coordinator {
            /// First requester, once a request arrived.
            granted: Option<NodeId>,
        },
        /// A client: knows the coordinator's id.
        Client,
    }

    impl Protocol for RacyNode {
        type Message = Request;

        fn on_wake(&mut self, ctx: &mut Context<'_, Request>) {
            if matches!(self, RacyNode::Client) {
                ctx.send(NodeId::new(0), Request);
            }
        }

        fn on_message(&mut self, from: NodeId, _msg: Request, _ctx: &mut Context<'_, Request>) {
            if let RacyNode::Coordinator { granted } = self {
                granted.get_or_insert(from);
            }
        }

        fn digest_state(&self, d: &mut StateDigest) {
            match self {
                RacyNode::Coordinator { granted } => {
                    d.mix(1);
                    d.mix(granted.map_or(u64::MAX, |g| g.index() as u64));
                }
                RacyNode::Client => d.mix(2),
            }
        }
    }

    /// Builds the fixture network: one coordinator plus `clients` clients,
    /// each client initially knowing only the coordinator.
    ///
    /// # Panics
    ///
    /// Panics if `clients == 0`.
    pub fn racy_network(clients: usize) -> Runner<RacyNode> {
        assert!(clients >= 1, "the race needs at least one client");
        let mut nodes = vec![RacyNode::Coordinator { granted: None }];
        let mut knowledge = vec![vec![]];
        for _ in 0..clients {
            nodes.push(RacyNode::Client);
            knowledge.push(vec![NodeId::new(0)]);
        }
        Runner::new(nodes, knowledge)
    }

    /// The fixture's property check: the lease must not sit with the
    /// highest-id client (the coordinator's bookkeeping assumes it never
    /// can). Returns a failure description when the planted bug fired.
    pub fn racy_violation(runner: &Runner<RacyNode>) -> Option<String> {
        let highest = NodeId::new(runner.len() - 1);
        match runner.node(NodeId::new(0)) {
            RacyNode::Coordinator {
                granted: Some(winner),
            } if *winner == highest => Some(format!(
                "lease granted to highest-id client {winner}: its request outran every other"
            )),
            _ => None,
        }
    }

    /// The racy fixture as a checkpointable [`ForkSystem`]: exploring it
    /// via [`explore_fork`](super::explore_fork) lets the DFS fork runs at
    /// cached branch points instead of replaying shared prefixes.
    #[derive(Clone, Copy, Debug)]
    pub struct RacySystem {
        clients: usize,
        tolerant: bool,
        spin: u32,
    }

    impl RacySystem {
        /// The standard fixture: `clients` racing clients, planted bug
        /// armed.
        pub fn new(clients: usize) -> Self {
            RacySystem {
                clients,
                tolerant: false,
                spin: 0,
            }
        }

        /// Benchmark mode: identical network and schedules, but the
        /// planted violation is ignored, so a deep exhaustive search runs
        /// to its full budget instead of stopping at the first race.
        pub fn tolerant(clients: usize) -> Self {
            RacySystem {
                clients,
                tolerant: true,
                spin: 0,
            }
        }

        /// Attaches `spin` rounds of deterministic mixing work to every
        /// executed event, modeling protocols whose handlers do real
        /// computation (knowledge-set merges, signature checks, …). The
        /// work feeds an accumulator carried in the run state, so it is
        /// identical however the run is reached — from scratch or resumed
        /// from a forked checkpoint — and the scheduler choices are
        /// untouched. This is the knob the explorer benchmark uses to
        /// weight prefix re-execution.
        pub fn spin(mut self, spin: u32) -> Self {
            self.spin = spin;
            self
        }
    }

    struct RacyRun {
        runner: Runner<RacyNode>,
        steps: u64,
        tolerant: bool,
        spin: u32,
        acc: u64,
    }

    impl ForkSystem for RacySystem {
        fn spawn(&self, sched: &mut dyn Scheduler) -> Box<dyn ForkRun> {
            let mut runner = racy_network(self.clients);
            runner.enqueue_wake_all(sched);
            Box::new(RacyRun {
                runner,
                steps: 0,
                tolerant: self.tolerant,
                spin: self.spin,
                acc: 0,
            })
        }
    }

    impl ForkRun for RacyRun {
        fn fork(&self) -> Box<dyn ForkRun> {
            Box::new(RacyRun {
                runner: self.runner.clone(),
                steps: self.steps,
                tolerant: self.tolerant,
                spin: self.spin,
                acc: self.acc,
            })
        }
        fn step(&mut self, sched: &mut dyn Scheduler) -> Result<bool, String> {
            let stepped = fixture_step(&mut self.runner, &mut self.steps, sched)?;
            if stepped && self.spin > 0 {
                let mut z = self.acc ^ self.steps;
                for _ in 0..self.spin {
                    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                }
                self.acc = std::hint::black_box(z);
            }
            Ok(stepped)
        }
        fn state_digest(&self) -> Option<u64> {
            Some(self.runner.state_digest())
        }
        fn check(&mut self) -> Result<(), String> {
            if self.tolerant {
                return Ok(());
            }
            match racy_violation(&self.runner) {
                Some(reason) => Err(reason),
                None => Ok(()),
            }
        }
    }

    /// Runs the fixture under `sched` to quiescence (or a small step
    /// budget) and applies [`racy_violation`] — the `run_one` closure the
    /// explorer and shrinker tests use.
    ///
    /// # Errors
    ///
    /// Returns the violation description (or a livelock report) as `Err`.
    pub fn run_racy(clients: usize, sched: &mut dyn Scheduler) -> Result<(), String> {
        super::run_fork_system(&RacySystem::new(clients), sched)
    }

    /// Messages of the *fragile* fixture: a hub's ping and a client's pong.
    #[derive(Clone, Debug)]
    pub enum PingPong {
        /// Hub → client.
        Ping,
        /// Client → hub.
        Pong,
    }

    impl Envelope for PingPong {
        fn kind(&self) -> &'static str {
            match self {
                PingPong::Ping => "ping",
                PingPong::Pong => "pong",
            }
        }
        fn for_each_carried_id(&self, _f: &mut dyn FnMut(NodeId)) {}
        fn aux_bits(&self) -> u64 {
            1
        }
    }

    /// One node of the planted *fault-dependent* bug network: node 0 is a
    /// hub that pings every client once on wake-up and counts pongs;
    /// clients pong every ping.
    ///
    /// The planted bug: the hub assumes the network is lossless and
    /// crash-free — with no faults every ping begets a pong and the
    /// invariant `pongs == clients` holds at quiescence under *any*
    /// schedule, but a single dropped message (or a delivery discarded by
    /// a crashed client) silences a client forever. This is the fixture
    /// the explorer's fault search exists to break.
    #[derive(Clone, Debug)]
    pub enum FragileNode {
        /// The hub: counts the pongs it has heard.
        Hub {
            /// Pongs received so far.
            pongs: usize,
            /// Clients it pinged.
            clients: usize,
        },
        /// A client: pongs every ping.
        Client,
    }

    impl Protocol for FragileNode {
        type Message = PingPong;

        fn on_wake(&mut self, ctx: &mut Context<'_, PingPong>) {
            if let FragileNode::Hub { clients, .. } = self {
                for c in 1..=*clients {
                    ctx.send(NodeId::new(c), PingPong::Ping);
                }
            }
        }

        fn on_message(&mut self, from: NodeId, msg: PingPong, ctx: &mut Context<'_, PingPong>) {
            match (self, msg) {
                (FragileNode::Client, PingPong::Ping) => ctx.send(from, PingPong::Pong),
                (FragileNode::Hub { pongs, .. }, PingPong::Pong) => *pongs += 1,
                _ => {}
            }
        }

        fn digest_state(&self, d: &mut StateDigest) {
            match self {
                FragileNode::Hub { pongs, clients } => {
                    d.mix(1);
                    d.mix(*pongs as u64);
                    d.mix(*clients as u64);
                }
                FragileNode::Client => d.mix(2),
            }
        }
    }

    /// Builds the fragile network: one hub plus `clients` clients, with
    /// mutual knowledge between the hub and each client.
    ///
    /// # Panics
    ///
    /// Panics if `clients == 0`.
    pub fn fragile_network(clients: usize) -> Runner<FragileNode> {
        assert!(clients >= 1, "the fragile hub needs at least one client");
        let mut nodes = vec![FragileNode::Hub { pongs: 0, clients }];
        let mut knowledge = vec![(1..=clients).map(NodeId::new).collect::<Vec<_>>()];
        for _ in 0..clients {
            nodes.push(FragileNode::Client);
            knowledge.push(vec![NodeId::new(0)]);
        }
        Runner::new(nodes, knowledge)
    }

    /// The fragile fixture as a checkpointable [`ForkSystem`]; see
    /// [`RacySystem`].
    #[derive(Clone, Copy, Debug)]
    pub struct FragileSystem {
        clients: usize,
    }

    impl FragileSystem {
        /// The fixture with `clients` clients behind the fragile hub.
        pub fn new(clients: usize) -> Self {
            FragileSystem { clients }
        }
    }

    struct FragileRun {
        runner: Runner<FragileNode>,
        steps: u64,
    }

    impl ForkSystem for FragileSystem {
        fn spawn(&self, sched: &mut dyn Scheduler) -> Box<dyn ForkRun> {
            let mut runner = fragile_network(self.clients);
            runner.enqueue_wake_all(sched);
            Box::new(FragileRun { runner, steps: 0 })
        }
    }

    impl ForkRun for FragileRun {
        fn fork(&self) -> Box<dyn ForkRun> {
            Box::new(FragileRun {
                runner: self.runner.clone(),
                steps: self.steps,
            })
        }
        fn step(&mut self, sched: &mut dyn Scheduler) -> Result<bool, String> {
            fixture_step(&mut self.runner, &mut self.steps, sched)
        }
        fn state_digest(&self) -> Option<u64> {
            Some(self.runner.state_digest())
        }
        fn check(&mut self) -> Result<(), String> {
            // A violation is only declared against a *complete* state —
            // hub awake, no messages in flight — so schedule shrinking
            // cannot fake a failure by merely truncating deliveries.
            if !self.runner.links_empty() || !self.runner.is_awake(NodeId::new(0)) {
                return Ok(());
            }
            match self.runner.node(NodeId::new(0)) {
                FragileNode::Hub { pongs, clients } if pongs < clients => Err(format!(
                    "fragile hub heard only {pongs} of {clients} pongs: a fault silenced a client"
                )),
                _ => Ok(()),
            }
        }
    }

    /// Runs the fragile fixture under `sched` and checks its (fault-naive)
    /// invariant. A violation is only declared against a *complete* state
    /// — hub awake, no messages in flight — so schedule shrinking cannot
    /// fake a failure by merely truncating deliveries.
    ///
    /// # Errors
    ///
    /// Returns the violation description (or a livelock report) as `Err`.
    pub fn run_fragile(clients: usize, sched: &mut dyn Scheduler) -> Result<(), String> {
        super::run_fork_system(&FragileSystem::new(clients), sched)
    }

    /// The *equiv* fixture's only message: an endorsement making its
    /// receiver a leader. Forgeable — a Byzantine sender can mint
    /// endorsements the voter never issued, whatever the salt flavor.
    #[derive(Clone, Debug)]
    pub struct Endorse;

    impl Envelope for Endorse {
        fn kind(&self) -> &'static str {
            "endorse"
        }
        fn for_each_carried_id(&self, _f: &mut dyn FnMut(NodeId)) {}
        fn aux_bits(&self) -> u64 {
            0
        }
        fn forge(_src: NodeId, _dst: NodeId, _salt: u32) -> Option<Self> {
            Some(Endorse)
        }
    }

    /// One node of the planted *equivocation-dependent* bug network: node 0
    /// is a voter that endorses exactly one candidate (node 1) on wake-up;
    /// every other node is a candidate that declares itself leader on
    /// receiving an endorsement.
    ///
    /// The planted bug: candidates trust endorsements without
    /// authentication. Under every honest schedule — any interleaving, any
    /// link faults — at most candidate 1 ever leads, so single-leadership
    /// holds. A Byzantine equivocator forging endorsements to other
    /// candidates elects a second leader: the violation *requires* a
    /// [`Choice::Forge`](crate::Choice::Forge) in the schedule, which is
    /// exactly what the explorer's Byzantine search exists to inject.
    #[derive(Clone, Debug)]
    pub enum EquivNode {
        /// The voter: endorses candidate 1 once, on wake-up.
        Voter,
        /// A candidate: leads as soon as anyone endorses it.
        Candidate {
            /// Whether an endorsement arrived.
            leader: bool,
        },
    }

    impl Protocol for EquivNode {
        type Message = Endorse;

        fn on_wake(&mut self, ctx: &mut Context<'_, Endorse>) {
            if matches!(self, EquivNode::Voter) {
                ctx.send(NodeId::new(1), Endorse);
            }
        }

        fn on_message(&mut self, _from: NodeId, _msg: Endorse, _ctx: &mut Context<'_, Endorse>) {
            if let EquivNode::Candidate { leader } = self {
                *leader = true;
            }
        }

        fn digest_state(&self, d: &mut StateDigest) {
            match self {
                EquivNode::Voter => d.mix(1),
                EquivNode::Candidate { leader } => {
                    d.mix(2);
                    d.mix(u64::from(*leader));
                }
            }
        }
    }

    /// Builds the equiv network: one voter plus `candidates` candidates,
    /// with mutual voter ↔ candidate knowledge.
    ///
    /// # Panics
    ///
    /// Panics if `candidates < 2` (a second leader needs a second
    /// candidate).
    pub fn equiv_network(candidates: usize) -> Runner<EquivNode> {
        assert!(candidates >= 2, "equivocation needs at least two candidates");
        let mut nodes = vec![EquivNode::Voter];
        let mut knowledge = vec![(1..=candidates).map(NodeId::new).collect::<Vec<_>>()];
        for _ in 0..candidates {
            nodes.push(EquivNode::Candidate { leader: false });
            knowledge.push(vec![NodeId::new(0)]);
        }
        Runner::new(nodes, knowledge)
    }

    /// The equiv fixture's property check: at most one candidate may lead.
    /// Returns a failure description when forged endorsements elected a
    /// second leader.
    pub fn equiv_violation(runner: &Runner<EquivNode>) -> Option<String> {
        let leaders: Vec<NodeId> = (1..runner.len())
            .map(NodeId::new)
            .filter(|&c| matches!(runner.node(c), EquivNode::Candidate { leader: true }))
            .collect();
        if leaders.len() >= 2 {
            let ids: Vec<String> = leaders.iter().map(ToString::to_string).collect();
            Some(format!(
                "forged endorsements elected {} leaders ({}): the voter endorsed only candidate 1",
                leaders.len(),
                ids.join(", ")
            ))
        } else {
            None
        }
    }

    /// The equiv fixture as a checkpointable [`ForkSystem`]; see
    /// [`RacySystem`].
    #[derive(Clone, Copy, Debug)]
    pub struct EquivSystem {
        candidates: usize,
    }

    impl EquivSystem {
        /// The fixture with `candidates` candidates behind the voter.
        pub fn new(candidates: usize) -> Self {
            EquivSystem { candidates }
        }
    }

    struct EquivRun {
        runner: Runner<EquivNode>,
        steps: u64,
    }

    impl ForkSystem for EquivSystem {
        fn spawn(&self, sched: &mut dyn Scheduler) -> Box<dyn ForkRun> {
            let mut runner = equiv_network(self.candidates);
            runner.enqueue_wake_all(sched);
            Box::new(EquivRun { runner, steps: 0 })
        }
    }

    impl ForkRun for EquivRun {
        fn fork(&self) -> Box<dyn ForkRun> {
            Box::new(EquivRun {
                runner: self.runner.clone(),
                steps: self.steps,
            })
        }
        fn step(&mut self, sched: &mut dyn Scheduler) -> Result<bool, String> {
            fixture_step(&mut self.runner, &mut self.steps, sched)
        }
        fn state_digest(&self) -> Option<u64> {
            Some(self.runner.state_digest())
        }
        fn check(&mut self) -> Result<(), String> {
            // A violation is only declared against a *complete* state —
            // voter awake, no messages in flight — so shrinking cannot
            // fake one by truncating the voter's own endorsement.
            if !self.runner.links_empty() || !self.runner.is_awake(NodeId::new(0)) {
                return Ok(());
            }
            match equiv_violation(&self.runner) {
                Some(reason) => Err(reason),
                None => Ok(()),
            }
        }
    }

    /// Runs the equiv fixture under `sched` and checks single-leadership.
    /// Honest schedules always pass; breaking it takes a Byzantine plan
    /// (see [`ExploreConfig::byzantine`](super::ExploreConfig::byzantine)).
    ///
    /// # Errors
    ///
    /// Returns the violation description (or a livelock report) as `Err`.
    pub fn run_equiv(candidates: usize, sched: &mut dyn Scheduler) -> Result<(), String> {
        super::run_fork_system(&EquivSystem::new(candidates), sched)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::ReplayScheduler;
    use crate::FifoScheduler;
    use std::collections::VecDeque;

    #[test]
    fn fixture_is_clean_under_fifo() {
        let mut sched = FifoScheduler::new();
        assert!(fixtures::run_racy(3, &mut sched).is_ok());
    }

    #[test]
    fn dfs_scheduler_degenerates_to_fifo_beyond_prefix() {
        let mut s = DfsScheduler::new(vec![], 2);
        for i in 0..4 {
            s.note_wake(NodeId::new(i));
        }
        for i in 0..4 {
            assert_eq!(s.choose(), Some(Choice::Wake(NodeId::new(i))));
        }
        assert_eq!(s.branch_counts(), &[4, 3]);
    }

    #[test]
    fn dfs_scheduler_follows_and_clamps_the_prefix() {
        let mut s = DfsScheduler::new(vec![2, 99], 4);
        for i in 0..3 {
            s.note_wake(NodeId::new(i));
        }
        assert_eq!(s.choose(), Some(Choice::Wake(NodeId::new(2))));
        // Index 99 clamps to the last pending event.
        assert_eq!(s.choose(), Some(Choice::Wake(NodeId::new(1))));
        assert_eq!(s.choose(), Some(Choice::Wake(NodeId::new(0))));
    }

    /// The pre-ring `DfsScheduler` pending storage: a `VecDeque` removed
    /// from by index. The ring must be observationally identical to this.
    struct ModelDfs {
        pending: VecDeque<Choice>,
        prefix: Vec<usize>,
        depth: usize,
        step: usize,
        branch_counts: Vec<usize>,
    }

    impl ModelDfs {
        fn choose(&mut self) -> Option<Choice> {
            if self.pending.is_empty() {
                return None;
            }
            if self.step < self.depth {
                self.branch_counts.push(self.pending.len());
            }
            let want = self.prefix.get(self.step).copied().unwrap_or(0);
            let idx = want.min(self.pending.len() - 1);
            self.step += 1;
            self.pending.remove(idx)
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::test_runner::ProptestConfig::with_cases(64))]

        /// Satellite: the Fenwick ring keeps the exact "i-th oldest live
        /// event" semantics of the old `VecDeque::remove(idx)` storage,
        /// including across compactions, for arbitrary push/choose
        /// interleavings and prefixes.
        #[test]
        fn ring_matches_the_vecdeque_model(
            prefix in proptest::collection::vec(0usize..6, 0..8),
            depth in 0usize..8,
            ops in proptest::collection::vec((0usize..3, 0usize..200), 1..300),
        ) {
            let mut ring = DfsScheduler::new(prefix.clone(), depth);
            let mut model = ModelDfs {
                pending: VecDeque::new(),
                prefix,
                depth,
                step: 0,
                branch_counts: Vec::new(),
            };
            for (op, arg) in ops {
                if op == 0 {
                    // A batch of pushes, ids distinct per arrival index so
                    // ordering mistakes are visible.
                    for k in 0..(arg % 5) + 1 {
                        let id = NodeId::new(arg + k);
                        ring.note_wake(id);
                        model.pending.push_back(Choice::Wake(id));
                    }
                } else {
                    proptest::prop_assert_eq!(ring.choose(), model.choose());
                }
            }
            // Drain both completely.
            loop {
                let (a, b) = (ring.choose(), model.choose());
                proptest::prop_assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
            proptest::prop_assert_eq!(ring.branch_counts(), model.branch_counts.as_slice());
        }
    }

    #[test]
    fn walk_seeds_never_collide_across_adjacent_bases() {
        // The old `base + i` scheme made walk i of base b identical to
        // walk i - 1 of base b + 1; mixed seeds must all be distinct.
        let mut seen = std::collections::HashSet::new();
        for base in 0..8u64 {
            for i in 0..64u64 {
                assert!(
                    seen.insert(walk_seed(base, i)),
                    "walk seed collision at base={base} i={i}"
                );
            }
        }
    }

    #[test]
    fn random_walk_finds_the_planted_race() {
        let config = ExploreConfig {
            random_walks: 64,
            dfs_budget: 0,
            dfs_depth: 0,
            seed: 0,
            fault: None,
            ..ExploreConfig::default()
        };
        let report = explore(&config, || |sched: &mut dyn Scheduler| {
            fixtures::run_racy(4, sched)
        });
        let failure = report.failure.expect("walk should find the race");
        assert!(matches!(failure.origin, Origin::RandomWalk { .. }));
        assert!(failure.reason.contains("highest-id client"));
        assert_eq!(failure.schedule.meta("reason"), Some(failure.reason.as_str()));
    }

    #[test]
    fn dfs_alone_finds_the_planted_race() {
        let config = ExploreConfig {
            random_walks: 0,
            dfs_budget: 128,
            dfs_depth: 4,
            seed: 0,
            fault: None,
            ..ExploreConfig::default()
        };
        let report = explore(&config, || |sched: &mut dyn Scheduler| {
            fixtures::run_racy(2, sched)
        });
        let failure = report.failure.expect("dfs should find the race");
        assert!(matches!(failure.origin, Origin::Dfs { .. }));
    }

    #[test]
    fn found_schedules_replay_to_the_same_failure() {
        let config = ExploreConfig::default();
        let report = explore(&config, || |sched: &mut dyn Scheduler| {
            fixtures::run_racy(4, sched)
        });
        let failure = report.failure.expect("should find the race");
        let mut replay = ReplayScheduler::strict(&failure.schedule);
        let err = fixtures::run_racy(4, &mut replay).unwrap_err();
        assert_eq!(err, failure.reason);
        assert_eq!(replay.leftover(), 0, "recorded run was complete");
    }

    #[test]
    fn exploration_respects_its_budget_and_counts_runs() {
        let config = ExploreConfig {
            random_walks: 3,
            dfs_budget: 5,
            dfs_depth: 3,
            seed: 9,
            fault: None,
            ..ExploreConfig::default()
        };
        let report = explore(&config, || |sched: &mut dyn Scheduler| {
            // Never fails: drain the schedule against a trivial system.
            let mut r = fixtures::racy_network(2);
            r.enqueue_wake_all(sched);
            r.run(sched, 1_000).map_err(|e| e.to_string())?;
            Ok(())
        });
        assert!(report.failure.is_none());
        assert_eq!(report.random_walks, 3);
        assert!(report.dfs_runs <= 5);
        assert_eq!(report.runs, report.random_walks + report.dfs_runs);
    }

    #[test]
    fn fragile_fixture_is_clean_without_faults() {
        // Even a full exploration finds nothing: the fixture only breaks
        // when a fault silences a client.
        let report = explore(&ExploreConfig::default(), || {
            |sched: &mut dyn Scheduler| fixtures::run_fragile(3, sched)
        });
        assert!(report.failure.is_none());
    }

    #[test]
    fn fault_search_finds_and_shrinks_the_planted_fragile_bug() {
        let config = ExploreConfig {
            random_walks: 64,
            dfs_budget: 0,
            dfs_depth: 0,
            seed: 0,
            fault: Some(FaultPlan::new(1).with_drop(0.25)),
            ..ExploreConfig::default()
        };
        let report = explore(&config, || |sched: &mut dyn Scheduler| {
            fixtures::run_fragile(1, sched)
        });
        let failure = report.failure.expect("fault search should silence the client");
        assert!(failure.reason.contains("pongs"));

        // Strict replay without any fault machinery — the injected faults
        // are ordinary recorded choices.
        let mut replay = ReplayScheduler::strict(&failure.schedule);
        let err = fixtures::run_fragile(1, &mut replay).unwrap_err();
        assert_eq!(err, failure.reason);

        // The shrinker minimizes it to the essence: the hub's wake plus the
        // fault that silences its client (a dropped ping, or a delivered
        // ping whose pong is dropped).
        let result = crate::shrink::shrink(&failure.schedule, || {
            |sched: &mut dyn Scheduler| fixtures::run_fragile(1, sched)
        });
        assert!(
            (2..=3).contains(&result.schedule.len()),
            "expected a 2-3 choice witness, got:\n{}",
            result.schedule.to_text()
        );
        let mut replay = ReplayScheduler::strict(&result.schedule);
        assert_eq!(
            fixtures::run_fragile(1, &mut replay).unwrap_err(),
            result.reason
        );
    }

    #[test]
    fn equiv_fixture_is_clean_without_a_byzantine_plan() {
        // A full exploration — interleavings alone, no forgeries — finds
        // nothing: only the endorsed candidate ever leads.
        let report = explore(&ExploreConfig::default(), || {
            |sched: &mut dyn Scheduler| fixtures::run_equiv(3, sched)
        });
        assert!(report.failure.is_none());
    }

    #[test]
    fn byzantine_search_finds_and_shrinks_the_planted_equivocation() {
        use crate::fault::ByzantinePlan;
        // Seed 3 makes candidate 3 the equivocator, forging endorsements
        // to candidates 1 and 2 — two leaders once both deliver.
        let config = ExploreConfig {
            random_walks: 64,
            dfs_budget: 64,
            dfs_depth: 4,
            seed: 0,
            byzantine: Some((ByzantinePlan::new(3, 1).only("equivocate"), 4)),
            ..ExploreConfig::default()
        };
        let report = explore(&config, || |sched: &mut dyn Scheduler| {
            fixtures::run_equiv(3, sched)
        });
        let failure = report.failure.expect("byzantine search should split leadership");
        assert!(failure.reason.contains("forged endorsements"));

        // Strict replay without any Byzantine machinery — the forgeries
        // are ordinary recorded choices.
        let mut replay = ReplayScheduler::strict(&failure.schedule);
        let err = fixtures::run_equiv(3, &mut replay).unwrap_err();
        assert_eq!(err, failure.reason);

        // ddmin strips the honest bulk; what remains is the voter's wake,
        // its endorsement, one forgery and the deliveries that elect the
        // second leader.
        let result = crate::shrink::shrink(&failure.schedule, || {
            |sched: &mut dyn Scheduler| fixtures::run_equiv(3, sched)
        });
        assert!(
            result.schedule.len() <= 6,
            "expected a <= 6 choice witness, got:\n{}",
            result.schedule.to_text()
        );
        assert!(
            result
                .schedule
                .choices()
                .iter()
                .any(|c| matches!(c, Choice::Forge { .. })),
            "the minimized witness must keep a forgery"
        );
        let mut replay = ReplayScheduler::strict(&result.schedule);
        assert_eq!(
            fixtures::run_equiv(3, &mut replay).unwrap_err(),
            result.reason
        );
    }

    #[test]
    fn byzantine_fork_exploration_matches_the_closure_contract() {
        use crate::fault::ByzantinePlan;
        // Checkpoint/fork must clone the Byzantine scheduler state
        // faithfully: both paths make the identical search.
        let config = ExploreConfig {
            random_walks: 8,
            dfs_budget: 64,
            dfs_depth: 5,
            seed: 3,
            byzantine: Some((ByzantinePlan::new(5, 1), 4)),
            ..ExploreConfig::default()
        };
        let closure = explore(&config, || |sched: &mut dyn Scheduler| {
            fixtures::run_equiv(3, sched)
        });
        let forked = explore_fork(&config, &fixtures::EquivSystem::new(3));
        assert_eq!(report_fingerprint(&closure), report_fingerprint(&forked));
    }

    #[test]
    fn dfs_enumerates_distinct_interleavings() {
        // Every DFS run on a benign system produces a distinct choice
        // sequence: the prefix enumeration never repeats a decision path.
        let seen = Mutex::new(Vec::<Vec<Choice>>::new());
        let config = ExploreConfig {
            random_walks: 0,
            dfs_budget: 40,
            dfs_depth: 3,
            seed: 0,
            fault: None,
            ..ExploreConfig::default()
        };
        let report = explore(&config, || |sched: &mut dyn Scheduler| {
            let mut recorder = RecordingScheduler::new(&mut *sched);
            let mut r = fixtures::racy_network(2);
            r.enqueue_wake_all(&mut recorder);
            r.run(&mut recorder, 1_000).map_err(|e| e.to_string())?;
            seen.lock().expect("seen lock").push(recorder.recorded().to_vec());
            Ok(())
        });
        assert!(report.failure.is_none());
        let seen = seen.into_inner().expect("seen lock");
        assert!(seen.len() > 5, "expected a real enumeration");
        for a in 0..seen.len() {
            for b in a + 1..seen.len() {
                assert_ne!(seen[a], seen[b], "schedules {a} and {b} coincide");
            }
        }
    }

    /// Renders a report (counters + failing schedule text) for byte-level
    /// comparison across engine configurations.
    fn report_fingerprint(report: &ExploreReport) -> String {
        let failure = report.failure.as_ref().map_or_else(
            || "none".to_string(),
            |f| {
                format!(
                    "run {} origin {} reason {}\n{}",
                    f.run_index,
                    f.origin,
                    f.reason,
                    f.schedule.to_text()
                )
            },
        );
        format!(
            "runs {} walks {} dfs {} stop {} sleep-pruned {} deduped {} failure {}",
            report.runs,
            report.random_walks,
            report.dfs_runs,
            report.stop,
            report.sleep_pruned,
            report.digest_deduped,
            failure
        )
    }

    #[test]
    fn fork_exploration_matches_the_closure_contract() {
        // The checkpointing fork path and the plain closure path must make
        // identical searches — same counters, same failure, same schedule.
        for (walks, dfs, depth) in [(8, 64, 5), (0, 96, 6)] {
            let config = ExploreConfig {
                random_walks: walks,
                dfs_budget: dfs,
                dfs_depth: depth,
                seed: 3,
                fault: None,
                ..ExploreConfig::default()
            };
            let closure = explore(&config, || |sched: &mut dyn Scheduler| {
                fixtures::run_racy(3, sched)
            });
            let forked = explore_fork(&config, &fixtures::RacySystem::new(3));
            assert_eq!(report_fingerprint(&closure), report_fingerprint(&forked));
        }
    }

    #[test]
    fn checkpointing_changes_nothing_and_verifies_against_scratch() {
        let base = ExploreConfig {
            random_walks: 0,
            dfs_budget: 128,
            dfs_depth: 6,
            seed: 0,
            fault: None,
            ..ExploreConfig::default()
        };
        let scratch = explore_fork(
            &ExploreConfig {
                checkpoint: false,
                ..base.clone()
            },
            &fixtures::RacySystem::new(3),
        );
        // verify_snapshots re-executes every resumed run from scratch and
        // panics on divergence — running it is the equivalence check.
        let checked = explore_fork(
            &ExploreConfig {
                verify_snapshots: true,
                ..base
            },
            &fixtures::RacySystem::new(3),
        );
        assert_eq!(report_fingerprint(&scratch), report_fingerprint(&checked));
    }

    #[test]
    fn reduced_search_still_finds_the_race_and_stamps_the_digest() {
        let config = ExploreConfig {
            random_walks: 0,
            dfs_budget: 256,
            dfs_depth: 5,
            seed: 0,
            reduce: ReduceMode::Sleep,
            ..ExploreConfig::default()
        };
        let report = explore_fork(&config, &fixtures::RacySystem::new(3));
        let failure = report.failure.expect("reduced dfs should find the race");
        assert!(matches!(failure.origin, Origin::Dfs { .. }));
        assert_eq!(report.stop, StopReason::Violation);
        let digest = failure
            .schedule
            .meta("terminal-digest")
            .expect("reduced failures carry the terminal digest");
        assert_eq!(digest.len(), 16, "digest is 16 hex chars: {digest}");
        // The stamped digest is the replayed run's actual terminal state.
        let mut replay = ReplayScheduler::strict(&failure.schedule);
        let mut runner = fixtures::racy_network(3);
        runner.enqueue_wake_all(&mut replay);
        while runner.step(&mut replay) {}
        assert_eq!(format!("{:016x}", runner.state_digest()), digest);
    }

    #[test]
    fn reduction_prunes_commuting_interleavings_without_losing_violations() {
        // Tolerant fixture: no violation either way, so both searches run
        // to completion and the run counts compare directly.
        let base = ExploreConfig {
            random_walks: 0,
            dfs_budget: 4_000,
            dfs_depth: 7,
            seed: 0,
            ..ExploreConfig::default()
        };
        let full = explore_fork(&base, &fixtures::RacySystem::tolerant(3));
        let reduced = explore_fork(
            &ExploreConfig {
                reduce: ReduceMode::Sleep,
                ..base.clone()
            },
            &fixtures::RacySystem::tolerant(3),
        );
        assert!(full.failure.is_none() && reduced.failure.is_none());
        assert_eq!(full.stop, StopReason::FrontierExhausted, "{}", full.dfs_runs);
        assert_eq!(reduced.stop, StopReason::FrontierExhausted);
        assert!(
            reduced.dfs_runs * 2 <= full.dfs_runs,
            "reduction should at least halve the search: {} vs {}",
            reduced.dfs_runs,
            full.dfs_runs
        );
        assert!(reduced.sleep_pruned > 0, "sleep sets should fire");
        assert_eq!(full.sleep_pruned, 0);
        assert_eq!(full.digest_deduped, 0);

        // And on the armed fixture the reduced search still finds the bug.
        let armed = explore_fork(
            &ExploreConfig {
                reduce: ReduceMode::Sleep,
                ..base
            },
            &fixtures::RacySystem::new(3),
        );
        assert!(armed.failure.is_some(), "reduction must not hide the race");
    }

    #[test]
    fn stop_reason_distinguishes_budget_from_frontier() {
        let base = ExploreConfig {
            random_walks: 0,
            dfs_depth: 5,
            seed: 0,
            ..ExploreConfig::default()
        };
        let starved = explore_fork(
            &ExploreConfig {
                dfs_budget: 3,
                ..base.clone()
            },
            &fixtures::RacySystem::tolerant(3),
        );
        assert_eq!(starved.stop, StopReason::BudgetExhausted);
        let done = explore_fork(
            &ExploreConfig {
                dfs_budget: 100_000,
                ..base
            },
            &fixtures::RacySystem::tolerant(3),
        );
        assert_eq!(done.stop, StopReason::FrontierExhausted);
        assert!(done.dfs_runs < 100_000);
    }

    #[test]
    fn reduced_checkpointing_changes_nothing_and_verifies_against_scratch() {
        let base = ExploreConfig {
            random_walks: 0,
            dfs_budget: 256,
            dfs_depth: 6,
            seed: 0,
            reduce: ReduceMode::Sleep,
            ..ExploreConfig::default()
        };
        let scratch = explore_fork(
            &ExploreConfig {
                checkpoint: false,
                ..base.clone()
            },
            &fixtures::RacySystem::tolerant(3),
        );
        // verify_snapshots also re-runs every resumed run from scratch and
        // panics on any divergence, including in the reduce-mode branch
        // observations and terminal digests.
        let checked = explore_fork(
            &ExploreConfig {
                verify_snapshots: true,
                ..base
            },
            &fixtures::RacySystem::tolerant(3),
        );
        assert_eq!(report_fingerprint(&scratch), report_fingerprint(&checked));
    }

    #[test]
    fn reduced_parallel_jobs_leave_the_report_byte_identical() {
        for system in [fixtures::RacySystem::new(4), fixtures::RacySystem::tolerant(4)] {
            let base = ExploreConfig {
                random_walks: 8,
                dfs_budget: 200,
                dfs_depth: 6,
                seed: 1,
                reduce: ReduceMode::Sleep,
                ..ExploreConfig::default()
            };
            let sequential = explore_fork(&base, &system);
            for jobs in [2, 4, 8] {
                let parallel = explore_fork(
                    &ExploreConfig {
                        jobs,
                        ..base.clone()
                    },
                    &system,
                );
                assert_eq!(
                    report_fingerprint(&sequential),
                    report_fingerprint(&parallel),
                    "jobs={jobs}"
                );
            }
        }
    }

    #[test]
    fn reduced_fault_search_still_finds_the_crash_fragile_bug() {
        // With a fault plan the dedup arm is off and the fault layer
        // widens footprints, but the reduced search must still reach the
        // planted crash-dependent violation.
        let config = ExploreConfig {
            random_walks: 0,
            dfs_budget: 512,
            dfs_depth: 5,
            seed: 0,
            fault: Some(FaultPlan::new(1).with_crash(NodeId::new(0), 2, 2)),
            reduce: ReduceMode::Sleep,
            ..ExploreConfig::default()
        };
        let report = explore_fork(&config, &fixtures::FragileSystem::new(1));
        let failure = report.failure.expect("crash search should silence the client");
        assert!(failure.reason.contains("pongs"));
        assert_eq!(report.digest_deduped, 0, "dedup is off under a fault plan");
    }

    #[test]
    fn canonical_tail_drains_rounds_by_sort_key() {
        // Beyond the branch window a reduced scheduler serves the round's
        // events smallest-sort-key first (Wake(1) before Tick(0) — wakes
        // order before ticks), and arrivals wait for the next round.
        let mut s = DfsScheduler::reduced(vec![], 0);
        s.note_tick(NodeId::new(0));
        s.note_wake(NodeId::new(2));
        s.note_wake(NodeId::new(1));
        assert_eq!(s.choose(), Some(Choice::Wake(NodeId::new(1))));
        // Mid-round arrival: joins the *next* round even though its key
        // sorts before the tick.
        s.note_wake(NodeId::new(0));
        assert_eq!(s.choose(), Some(Choice::Wake(NodeId::new(2))));
        assert_eq!(s.choose(), Some(Choice::Tick(NodeId::new(0))));
        assert_eq!(s.choose(), Some(Choice::Wake(NodeId::new(0))));
        assert_eq!(s.choose(), None);
    }

    #[test]
    fn parallel_jobs_leave_the_report_byte_identical() {
        for fault in [None, Some(FaultPlan::new(1).with_drop(0.25))] {
            let base = ExploreConfig {
                random_walks: 24,
                dfs_budget: 48,
                dfs_depth: 5,
                seed: 1,
                fault,
                ..ExploreConfig::default()
            };
            let sequential = explore_fork(&base, &fixtures::RacySystem::new(3));
            for jobs in [2, 4, 8] {
                let parallel = explore_fork(
                    &ExploreConfig {
                        jobs,
                        ..base.clone()
                    },
                    &fixtures::RacySystem::new(3),
                );
                assert_eq!(
                    report_fingerprint(&sequential),
                    report_fingerprint(&parallel),
                    "jobs={jobs}"
                );
            }
        }
    }
}
