//! Schedule recording and byte-exact replay.
//!
//! Because a simulation run is a pure function of the initial network and
//! the sequence of [`Choice`]s the scheduler makes, capturing that sequence
//! captures the *whole execution*: a [`RecordingScheduler`] wraps any inner
//! scheduler and logs every choice into a [`Schedule`], and a
//! [`ReplayScheduler`] re-executes a `Schedule` choice-for-choice — same
//! metrics, same trace, same final state. This is what makes every failing
//! interleaving (a property-test case, an explorer find, a field report)
//! reproducible beyond its seed, and what the [`shrink`](crate::shrink)
//! module minimizes.
//!
//! # The schedule file format (versions 1 and 2)
//!
//! A schedule is a line-oriented UTF-8 text file:
//!
//! ```text
//! ard-schedule v1
//! meta topology ring:4
//! meta variant ad-hoc
//! # comment lines and blank lines are ignored
//! w 0
//! d 0 1
//! ```
//!
//! * the first non-blank line must be the header `ard-schedule v1` or
//!   `ard-schedule v2`;
//! * `meta <key> <value…>` lines carry free-form metadata (topology spec,
//!   variant, provenance) — keys contain no whitespace, the value is the
//!   rest of the line;
//! * `w <node>` wakes node `<node>`;
//! * `d <src> <dst>` delivers the oldest in-flight message on the link
//!   `src → dst` (per-link FIFO makes the token unambiguous);
//! * `x <src> <dst>` drops the oldest in-flight message on `src → dst`
//!   (an injected link fault);
//! * `u <src> <dst>` duplicates the oldest in-flight message on
//!   `src → dst` (a copy joins the queue tail);
//! * `c <node>` crashes node `<node>`; `r <node>` restarts it;
//! * `t <node>` fires a timer tick node `<node>` armed.
//!
//! Version 2 adds the Byzantine/churn directives:
//!
//! * `f <src> <dst> <salt>` forges a message from `src` to `dst` with the
//!   protocol-interpreted `salt` ([`Choice::Forge`]);
//! * `s <src> <dst>` is Byzantine silence: `src` withholds the oldest
//!   in-flight message toward `dst` ([`Choice::Silence`]);
//! * `z <node>` stale-restarts a crashed node with amnesiac state;
//! * `j <node>` joins node `<node>` to the running network;
//! * `l <node>` makes node `<node>` leave permanently.
//!
//! [`Schedule::to_text`] emits the `v1` header whenever every choice is
//! expressible in version 1 and the `v2` header only when a v2 directive
//! actually occurs, so pre-v2 recordings stay byte-identical. The parser
//! accepts all directives under either header (lenient v1 reads).
//!
//! The fault directives exist so that runs under
//! [`fault::FaultScheduler`](crate::fault::FaultScheduler) record *complete*
//! executions: replaying a fault schedule needs no fault machinery at all —
//! the recorded `x`/`u`/`c`/`r`/`t` choices drive the runner directly.
//!
//! # Example
//!
//! ```
//! use ard_netsim::record::{RecordingScheduler, ReplayScheduler, Schedule};
//! use ard_netsim::{FifoScheduler, NodeId, Scheduler};
//!
//! let mut rec = RecordingScheduler::new(FifoScheduler::new());
//! rec.note_wake(NodeId::new(0));
//! rec.note_wake(NodeId::new(1));
//! while rec.choose().is_some() {}
//! let schedule = rec.into_schedule();
//!
//! let text = schedule.to_text();
//! let parsed = Schedule::parse(&text).unwrap();
//! assert_eq!(parsed, schedule);
//!
//! let mut replay = ReplayScheduler::strict(&parsed);
//! replay.note_wake(NodeId::new(0));
//! replay.note_wake(NodeId::new(1));
//! assert_eq!(replay.choose(), Some(ard_netsim::Choice::Wake(NodeId::new(0))));
//! ```

use std::collections::{BTreeMap, VecDeque};
use std::error::Error;
use std::fmt;

use crate::scheduler::{Choice, Scheduler, SendToken};
use crate::NodeId;

/// The header line every version-1 schedule file starts with.
pub const SCHEDULE_HEADER: &str = "ard-schedule v1";

/// The header line of a version-2 schedule file (Byzantine/churn alphabet).
pub const SCHEDULE_HEADER_V2: &str = "ard-schedule v2";

/// Whether a choice is expressible in the version-1 format.
fn is_v1_choice(choice: &Choice) -> bool {
    !matches!(
        choice,
        Choice::Forge { .. }
            | Choice::Silence { .. }
            | Choice::StaleRestart(_)
            | Choice::Join(_)
            | Choice::Leave(_)
    )
}

/// A recorded sequence of scheduler choices plus free-form metadata.
///
/// The choice sequence is the execution; the metadata describes how to
/// rebuild the system it drives (topology spec, variant, provenance).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Schedule {
    meta: BTreeMap<String, String>,
    choices: Vec<Choice>,
}

impl Schedule {
    /// A schedule over the given choices, with no metadata.
    pub fn new(choices: Vec<Choice>) -> Self {
        Schedule {
            meta: BTreeMap::new(),
            choices,
        }
    }

    /// The recorded choices, in execution order.
    pub fn choices(&self) -> &[Choice] {
        &self.choices
    }

    /// Number of recorded choices.
    pub fn len(&self) -> usize {
        self.choices.len()
    }

    /// Whether no choices were recorded.
    pub fn is_empty(&self) -> bool {
        self.choices.is_empty()
    }

    /// Sets a metadata entry (replacing any previous value for `key`).
    ///
    /// # Panics
    ///
    /// Panics if `key` is empty or contains whitespace, or if `value`
    /// contains a newline — either would corrupt the text format.
    pub fn set_meta(&mut self, key: &str, value: impl Into<String>) {
        let value = value.into();
        assert!(
            !key.is_empty() && !key.contains(char::is_whitespace),
            "meta key `{key}` must be non-empty and whitespace-free"
        );
        assert!(
            !value.contains('\n'),
            "meta value for `{key}` must be single-line"
        );
        self.meta.insert(key.to_string(), value);
    }

    /// Looks up a metadata entry.
    pub fn meta(&self, key: &str) -> Option<&str> {
        self.meta.get(key).map(String::as_str)
    }

    /// All metadata entries, in key order.
    pub fn meta_iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.meta.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Renders the schedule in the text format, choosing the lowest
    /// version that can express it: `v1` unless a Byzantine/churn choice
    /// occurs, so pre-v2 recordings stay byte-identical.
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity(16 + 8 * self.choices.len());
        if self.choices.iter().all(is_v1_choice) {
            out.push_str(SCHEDULE_HEADER);
        } else {
            out.push_str(SCHEDULE_HEADER_V2);
        }
        out.push('\n');
        for (k, v) in &self.meta {
            out.push_str("meta ");
            out.push_str(k);
            out.push(' ');
            out.push_str(v);
            out.push('\n');
        }
        for choice in &self.choices {
            match *choice {
                Choice::Wake(node) => {
                    out.push_str(&format!("w {}\n", node.index()));
                }
                Choice::Deliver { src, dst } => {
                    out.push_str(&format!("d {} {}\n", src.index(), dst.index()));
                }
                Choice::Drop { src, dst } => {
                    out.push_str(&format!("x {} {}\n", src.index(), dst.index()));
                }
                Choice::Duplicate { src, dst } => {
                    out.push_str(&format!("u {} {}\n", src.index(), dst.index()));
                }
                Choice::Crash(node) => {
                    out.push_str(&format!("c {}\n", node.index()));
                }
                Choice::Restart(node) => {
                    out.push_str(&format!("r {}\n", node.index()));
                }
                Choice::Tick(node) => {
                    out.push_str(&format!("t {}\n", node.index()));
                }
                Choice::Forge { src, dst, salt } => {
                    out.push_str(&format!("f {} {} {}\n", src.index(), dst.index(), salt));
                }
                Choice::Silence { src, dst } => {
                    out.push_str(&format!("s {} {}\n", src.index(), dst.index()));
                }
                Choice::StaleRestart(node) => {
                    out.push_str(&format!("z {}\n", node.index()));
                }
                Choice::Join(node) => {
                    out.push_str(&format!("j {}\n", node.index()));
                }
                Choice::Leave(node) => {
                    out.push_str(&format!("l {}\n", node.index()));
                }
            }
        }
        out
    }

    /// Parses the text format (version 1 or 2 — every directive is
    /// accepted under either header).
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleParseError`] naming the offending line on a bad
    /// header, an unknown directive or a malformed operand.
    pub fn parse(text: &str) -> Result<Self, ScheduleParseError> {
        let fail = |line: usize, message: String| ScheduleParseError { line, message };
        let parse_node = |line: usize, s: &str, what: &str| -> Result<NodeId, ScheduleParseError> {
            s.parse::<usize>()
                .map(NodeId::new)
                .map_err(|_| fail(line, format!("{what}: `{s}` is not a node index")))
        };
        let mut lines = text
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, l.trim()))
            .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'));
        match lines.next() {
            Some((_, header)) if header == SCHEDULE_HEADER || header == SCHEDULE_HEADER_V2 => {}
            Some((line, other)) => {
                return Err(fail(
                    line,
                    format!(
                        "expected header `{SCHEDULE_HEADER}` or `{SCHEDULE_HEADER_V2}`, \
                         got `{other}`"
                    ),
                ))
            }
            None => return Err(fail(0, "empty schedule file".to_string())),
        }
        let mut schedule = Schedule::default();
        for (line, l) in lines {
            let mut parts = l.split_whitespace();
            let directive = parts.next().expect("non-empty line");
            match directive {
                "meta" => {
                    let rest = l["meta".len()..].trim_start();
                    if rest.is_empty() {
                        return Err(fail(line, "meta needs a key".to_string()));
                    }
                    let (key, value) = match rest.split_once(char::is_whitespace) {
                        Some((k, v)) => (k, v.trim_start()),
                        None => (rest, ""),
                    };
                    schedule.meta.insert(key.to_string(), value.to_string());
                }
                d @ ("w" | "c" | "r" | "t" | "z" | "j" | "l") => {
                    let node = parts
                        .next()
                        .ok_or_else(|| fail(line, format!("{d} needs a node")))?;
                    if parts.next().is_some() {
                        return Err(fail(line, format!("{d} takes exactly one operand")));
                    }
                    let node = parse_node(line, node, "node")?;
                    schedule.choices.push(match d {
                        "w" => Choice::Wake(node),
                        "c" => Choice::Crash(node),
                        "r" => Choice::Restart(node),
                        "z" => Choice::StaleRestart(node),
                        "j" => Choice::Join(node),
                        "l" => Choice::Leave(node),
                        _ => Choice::Tick(node),
                    });
                }
                d @ ("d" | "x" | "u" | "s") => {
                    let src = parts
                        .next()
                        .ok_or_else(|| fail(line, format!("{d} needs src and dst")))?;
                    let dst = parts
                        .next()
                        .ok_or_else(|| fail(line, format!("{d} needs src and dst")))?;
                    if parts.next().is_some() {
                        return Err(fail(line, format!("{d} takes exactly two operands")));
                    }
                    let src = parse_node(line, src, "src")?;
                    let dst = parse_node(line, dst, "dst")?;
                    schedule.choices.push(match d {
                        "d" => Choice::Deliver { src, dst },
                        "x" => Choice::Drop { src, dst },
                        "s" => Choice::Silence { src, dst },
                        _ => Choice::Duplicate { src, dst },
                    });
                }
                "f" => {
                    let src = parts
                        .next()
                        .ok_or_else(|| fail(line, "f needs src, dst and salt".to_string()))?;
                    let dst = parts
                        .next()
                        .ok_or_else(|| fail(line, "f needs src, dst and salt".to_string()))?;
                    let salt = parts
                        .next()
                        .ok_or_else(|| fail(line, "f needs src, dst and salt".to_string()))?;
                    if parts.next().is_some() {
                        return Err(fail(line, "f takes exactly three operands".to_string()));
                    }
                    let src = parse_node(line, src, "src")?;
                    let dst = parse_node(line, dst, "dst")?;
                    let salt = salt
                        .parse::<u32>()
                        .map_err(|_| fail(line, format!("salt: `{salt}` is not a u32")))?;
                    schedule.choices.push(Choice::Forge { src, dst, salt });
                }
                other => {
                    return Err(fail(
                        line,
                        format!(
                            "unknown directive `{other}` \
                             (expected meta, w, d, x, u, c, r, t, f, s, z, j or l)"
                        ),
                    ))
                }
            }
        }
        Ok(schedule)
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_text())
    }
}

/// A parse failure in a schedule file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScheduleParseError {
    /// 1-based line number of the offending line (0 for an empty file).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ScheduleParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "schedule line {}: {}", self.line, self.message)
    }
}

impl Error for ScheduleParseError {}

/// Wraps any scheduler and records the exact choice sequence it makes.
///
/// The wrapper is transparent: the inner scheduler sees every token and
/// makes every decision; `RecordingScheduler` only logs what it returns.
#[derive(Clone, Debug)]
pub struct RecordingScheduler<S> {
    inner: S,
    recorded: Vec<Choice>,
    terminal_digest: Option<u64>,
}

impl<S> RecordingScheduler<S> {
    /// Wraps `inner`, recording from the first `choose` on.
    pub fn new(inner: S) -> Self {
        RecordingScheduler {
            inner,
            recorded: Vec::new(),
            terminal_digest: None,
        }
    }

    /// The choices recorded so far, in execution order.
    pub fn recorded(&self) -> &[Choice] {
        &self.recorded
    }

    /// The canonical terminal-state digest of the recorded run, if it ran
    /// to quiescence under a [`Runner`](crate::Runner) (reported via
    /// [`Scheduler::note_terminal_digest`]).
    pub fn terminal_digest(&self) -> Option<u64> {
        self.terminal_digest
    }

    /// The wrapped scheduler.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Mutable access to the wrapped scheduler (the explorer retargets a
    /// checkpointed scheduler stack through this before resuming it).
    pub fn inner_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    /// Consumes the wrapper, returning the recorded [`Schedule`].
    pub fn into_schedule(self) -> Schedule {
        Schedule::new(self.recorded)
    }

    /// Consumes the wrapper, returning the inner scheduler and the
    /// recorded [`Schedule`].
    pub fn into_parts(self) -> (S, Schedule) {
        (self.inner, Schedule::new(self.recorded))
    }
}

impl<S: Scheduler> Scheduler for RecordingScheduler<S> {
    fn note_wake(&mut self, node: NodeId) {
        self.inner.note_wake(node);
    }
    fn note_send(&mut self, token: SendToken) {
        self.inner.note_send(token);
    }
    fn note_tick(&mut self, node: NodeId) {
        self.inner.note_tick(node);
    }
    fn choose(&mut self) -> Option<Choice> {
        let choice = self.inner.choose();
        if let Some(c) = choice {
            self.recorded.push(c);
        }
        choice
    }
    fn pending(&self) -> usize {
        self.inner.pending()
    }
    fn wants_footprints(&self) -> bool {
        self.inner.wants_footprints()
    }
    fn note_footprint(&mut self, choice: Choice, footprint: &crate::Footprint) {
        self.inner.note_footprint(choice, footprint);
    }
    fn wants_state_digest(&self) -> bool {
        self.inner.wants_state_digest()
    }
    fn note_state_digest(&mut self, digest: u64) {
        self.inner.note_state_digest(digest);
    }
    fn wants_terminal_digest(&self) -> bool {
        // The recorder itself wants one (it rides into schedule meta and
        // the digest-determinism tests), on top of whatever the inner
        // scheduler asks for.
        true
    }
    fn note_terminal_digest(&mut self, digest: u64) {
        self.terminal_digest = Some(digest);
        self.inner.note_terminal_digest(digest);
    }
}

/// Re-executes a recorded choice sequence.
///
/// Two modes:
///
/// * **strict** ([`ReplayScheduler::strict`]) — every recorded choice must
///   be enabled (its token pending) when its turn comes; a mismatch is a
///   *divergence* (the system under replay differs from the one recorded)
///   and panics with a loud diagnostic. When the sequence is exhausted the
///   scheduler reports quiescence; [`leftover`](ReplayScheduler::leftover)
///   tells whether the run was truncated.
/// * **lenient** ([`ReplayScheduler::lenient`]) — recorded choices that are
///   not enabled are silently skipped (counted in
///   [`skipped`](ReplayScheduler::skipped)). This is what schedule
///   *shrinking* needs: a candidate subsequence executes its enabled
///   choices and ends, and the actually-executed sequence (re-recorded via
///   [`RecordingScheduler`]) is strict-replayable again.
#[derive(Debug)]
pub struct ReplayScheduler {
    choices: Vec<Choice>,
    cursor: usize,
    /// All live tokens in arrival order (a multiset: one entry per token).
    pending: VecDeque<Choice>,
    strict: bool,
    skipped: u64,
}

impl ReplayScheduler {
    /// A strict replayer for `schedule` (panics on divergence).
    pub fn strict(schedule: &Schedule) -> Self {
        Self::from_choices(schedule.choices().to_vec(), true)
    }

    /// A lenient replayer over an explicit choice sequence (skips
    /// disabled choices).
    pub fn lenient(choices: &[Choice]) -> Self {
        Self::from_choices(choices.to_vec(), false)
    }

    fn from_choices(choices: Vec<Choice>, strict: bool) -> Self {
        ReplayScheduler {
            choices,
            cursor: 0,
            pending: VecDeque::new(),
            strict,
            skipped: 0,
        }
    }

    /// Index of the next choice to replay (= number executed or skipped).
    pub fn position(&self) -> usize {
        self.cursor
    }

    /// Tokens still pending (nonzero after exhaustion means the recorded
    /// schedule was a truncation of the full run).
    pub fn leftover(&self) -> usize {
        self.pending.len()
    }

    /// Recorded choices skipped because they were not enabled (always 0 in
    /// strict mode).
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// Whether `choice` is enabled against the current token multiset, and
    /// if so which pending entry it consumes (`None` for token-free
    /// choices like crash/restart).
    ///
    /// Fault choices map onto *delivery* tokens: a recorded drop or
    /// duplicate of `src → dst` is enabled exactly when a message is in
    /// flight on that link. A drop consumes the token (the message is
    /// gone); a duplicate leaves it (the runner re-announces the copy via
    /// `note_send`, growing the multiset by one).
    fn enabledness(&self, choice: Choice) -> Result<Option<usize>, ()> {
        let find = |want: Choice| self.pending.iter().position(|&p| p == want).ok_or(());
        match choice {
            Choice::Wake(_) | Choice::Deliver { .. } | Choice::Tick(_) => {
                find(choice).map(Some)
            }
            Choice::Drop { src, dst } | Choice::Silence { src, dst } => {
                find(Choice::Deliver { src, dst }).map(Some)
            }
            Choice::Duplicate { src, dst } => find(Choice::Deliver { src, dst }).map(|_| None),
            Choice::Crash(_)
            | Choice::Restart(_)
            | Choice::Forge { .. }
            | Choice::StaleRestart(_)
            | Choice::Join(_)
            | Choice::Leave(_) => Ok(None),
        }
    }
}

impl Scheduler for ReplayScheduler {
    fn note_wake(&mut self, node: NodeId) {
        self.pending.push_back(Choice::Wake(node));
    }
    fn note_send(&mut self, token: SendToken) {
        self.pending.push_back(Choice::Deliver {
            src: token.src,
            dst: token.dst,
        });
    }
    fn note_tick(&mut self, node: NodeId) {
        self.pending.push_back(Choice::Tick(node));
    }
    fn choose(&mut self) -> Option<Choice> {
        while self.cursor < self.choices.len() {
            let choice = self.choices[self.cursor];
            match self.enabledness(choice) {
                Ok(consumes) => {
                    self.cursor += 1;
                    if let Some(i) = consumes {
                        self.pending.remove(i);
                    }
                    return Some(choice);
                }
                Err(()) if self.strict => panic!(
                    "replay divergence at event {}: recorded choice {choice:?} is not \
                     pending ({} live tokens: {:?})",
                    self.cursor,
                    self.pending.len(),
                    self.pending.iter().take(8).collect::<Vec<_>>(),
                ),
                Err(()) => {
                    self.cursor += 1;
                    self.skipped += 1;
                }
            }
        }
        None
    }
    fn pending(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FifoScheduler;

    fn token(src: usize, dst: usize, seq: u64) -> SendToken {
        SendToken {
            src: NodeId::new(src),
            dst: NodeId::new(dst),
            seq,
            kind: "t",
        }
    }

    #[test]
    fn text_round_trip_preserves_everything() {
        let mut s = Schedule::new(vec![
            Choice::Wake(NodeId::new(3)),
            Choice::Deliver {
                src: NodeId::new(3),
                dst: NodeId::new(0),
            },
        ]);
        s.set_meta("topology", "path:4");
        s.set_meta("variant", "ad-hoc");
        let text = s.to_text();
        assert!(text.starts_with(SCHEDULE_HEADER));
        assert_eq!(Schedule::parse(&text).unwrap(), s);
    }

    #[test]
    fn parse_tolerates_comments_and_blank_lines() {
        let s = Schedule::parse(
            "\n# a failing interleaving\nard-schedule v1\n\nmeta reason why it failed\n# hmm\nw 1\nd 1 2\n",
        )
        .unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.meta("reason"), Some("why it failed"));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for (text, needle) in [
            ("", "empty"),
            ("ard-schedule v3\nw 0\n", "expected header"),
            ("ard-schedule v1\nq 0\n", "unknown directive"),
            ("ard-schedule v1\nw\n", "needs a node"),
            ("ard-schedule v1\nw zero\n", "not a node index"),
            ("ard-schedule v1\nd 0\n", "needs src and dst"),
            ("ard-schedule v1\nd 0 1 2\n", "exactly two"),
            ("ard-schedule v1\nw 0 0\n", "exactly one"),
            ("ard-schedule v1\nx 0\n", "needs src and dst"),
            ("ard-schedule v1\nu 0 1 2\n", "exactly two"),
            ("ard-schedule v1\nc\n", "needs a node"),
            ("ard-schedule v1\nt 0 0\n", "exactly one"),
            ("ard-schedule v2\nf 0 1\n", "needs src, dst and salt"),
            ("ard-schedule v2\nf 0 1 2 3\n", "exactly three"),
            ("ard-schedule v2\nf 0 1 salty\n", "not a u32"),
            ("ard-schedule v2\ns 0\n", "needs src and dst"),
            ("ard-schedule v2\nz 0 0\n", "exactly one"),
            ("ard-schedule v2\nj\n", "needs a node"),
            ("ard-schedule v2\nl 1 2\n", "exactly one"),
        ] {
            let err = Schedule::parse(text).unwrap_err();
            assert!(err.to_string().contains(needle), "{text:?}: {err}");
        }
    }

    #[test]
    fn v2_choices_round_trip_under_the_v2_header() {
        let mut s = Schedule::new(vec![
            Choice::Wake(NodeId::new(0)),
            Choice::Forge {
                src: NodeId::new(1),
                dst: NodeId::new(2),
                salt: 0x0100,
            },
            Choice::Silence {
                src: NodeId::new(1),
                dst: NodeId::new(0),
            },
            Choice::Crash(NodeId::new(3)),
            Choice::StaleRestart(NodeId::new(3)),
            Choice::Join(NodeId::new(4)),
            Choice::Leave(NodeId::new(5)),
        ]);
        s.set_meta("byzantine", "f=1,seed=7");
        let text = s.to_text();
        assert!(text.starts_with(SCHEDULE_HEADER_V2), "{text}");
        assert_eq!(Schedule::parse(&text).unwrap(), s);
    }

    #[test]
    fn v1_expressible_schedules_keep_the_v1_header() {
        let s = Schedule::new(vec![
            Choice::Wake(NodeId::new(0)),
            Choice::Drop {
                src: NodeId::new(0),
                dst: NodeId::new(1),
            },
            Choice::Crash(NodeId::new(1)),
            Choice::Restart(NodeId::new(1)),
        ]);
        assert!(s.to_text().starts_with(SCHEDULE_HEADER));
        assert!(!s.to_text().contains(SCHEDULE_HEADER_V2));
    }

    #[test]
    fn v2_directives_parse_under_the_v1_header() {
        // Lenient v1 reads: a hand-edited v1 file may gain v2 directives
        // without touching its header.
        let s = Schedule::parse("ard-schedule v1\nj 2\nf 2 0 7\nl 2\n").unwrap();
        assert_eq!(
            s.choices(),
            &[
                Choice::Join(NodeId::new(2)),
                Choice::Forge {
                    src: NodeId::new(2),
                    dst: NodeId::new(0),
                    salt: 7,
                },
                Choice::Leave(NodeId::new(2)),
            ]
        );
    }

    #[test]
    fn silence_consumes_a_pending_delivery_like_drop() {
        let schedule = Schedule::new(vec![Choice::Silence {
            src: NodeId::new(0),
            dst: NodeId::new(1),
        }]);
        let mut r = ReplayScheduler::strict(&schedule);
        r.note_send(token(0, 1, 0));
        assert_eq!(
            r.choose(),
            Some(Choice::Silence {
                src: NodeId::new(0),
                dst: NodeId::new(1)
            })
        );
        assert_eq!(r.pending(), 0);
        assert_eq!(r.choose(), None);
    }

    #[test]
    fn recorder_captures_the_inner_choice_sequence() {
        let mut rec = RecordingScheduler::new(FifoScheduler::new());
        rec.note_wake(NodeId::new(0));
        rec.note_send(token(0, 1, 0));
        let mut seen = Vec::new();
        while let Some(c) = rec.choose() {
            seen.push(c);
        }
        assert_eq!(rec.recorded(), seen.as_slice());
        assert_eq!(rec.into_schedule().choices(), seen.as_slice());
    }

    #[test]
    fn strict_replay_follows_the_recorded_order() {
        let schedule = Schedule::new(vec![
            Choice::Wake(NodeId::new(1)),
            Choice::Wake(NodeId::new(0)),
        ]);
        let mut r = ReplayScheduler::strict(&schedule);
        r.note_wake(NodeId::new(0));
        r.note_wake(NodeId::new(1));
        assert_eq!(r.choose(), Some(Choice::Wake(NodeId::new(1))));
        assert_eq!(r.choose(), Some(Choice::Wake(NodeId::new(0))));
        assert_eq!(r.choose(), None);
        assert_eq!(r.leftover(), 0);
    }

    #[test]
    #[should_panic(expected = "replay divergence at event 0")]
    fn strict_replay_panics_on_divergence() {
        let schedule = Schedule::new(vec![Choice::Wake(NodeId::new(7))]);
        let mut r = ReplayScheduler::strict(&schedule);
        r.note_wake(NodeId::new(0));
        let _ = r.choose();
    }

    #[test]
    fn strict_replay_reports_truncation_via_leftover() {
        let schedule = Schedule::new(vec![Choice::Wake(NodeId::new(0))]);
        let mut r = ReplayScheduler::strict(&schedule);
        r.note_wake(NodeId::new(0));
        r.note_wake(NodeId::new(1));
        assert_eq!(r.choose(), Some(Choice::Wake(NodeId::new(0))));
        assert_eq!(r.choose(), None);
        assert_eq!(r.leftover(), 1);
    }

    #[test]
    fn lenient_replay_skips_disabled_choices() {
        let choices = [
            Choice::Wake(NodeId::new(9)), // never pending → skipped
            Choice::Wake(NodeId::new(0)),
            Choice::Deliver {
                src: NodeId::new(0),
                dst: NodeId::new(1),
            }, // not pending either → skipped
            Choice::Wake(NodeId::new(1)),
        ];
        let mut r = ReplayScheduler::lenient(&choices);
        r.note_wake(NodeId::new(0));
        r.note_wake(NodeId::new(1));
        assert_eq!(r.choose(), Some(Choice::Wake(NodeId::new(0))));
        assert_eq!(r.choose(), Some(Choice::Wake(NodeId::new(1))));
        assert_eq!(r.choose(), None);
        assert_eq!(r.skipped(), 2);
        assert_eq!(r.position(), 4);
    }

    #[test]
    fn replay_consumes_per_link_tokens_as_a_multiset() {
        let schedule = Schedule::new(vec![
            Choice::Deliver {
                src: NodeId::new(0),
                dst: NodeId::new(1),
            },
            Choice::Deliver {
                src: NodeId::new(0),
                dst: NodeId::new(1),
            },
        ]);
        let mut r = ReplayScheduler::strict(&schedule);
        r.note_send(token(0, 1, 0));
        r.note_send(token(0, 1, 1));
        assert!(r.choose().is_some());
        assert_eq!(r.pending(), 1);
        assert!(r.choose().is_some());
        assert_eq!(r.choose(), None);
    }

    #[test]
    #[should_panic(expected = "whitespace-free")]
    fn meta_keys_with_whitespace_are_rejected() {
        Schedule::default().set_meta("bad key", "v");
    }
}
