use crate::NodeId;

/// Handle through which a protocol node emits messages during a handler call.
///
/// Sends are buffered and flushed by the [`Runner`](crate::Runner) after the
/// handler returns, at which point the knowledge-graph constraint is
/// enforced: the destination must be an id the sending node has learned.
///
/// A node cannot send to itself; the paper's algorithm "simulates the message
/// sending internally" in the one place (a leader querying itself) where a
/// self-message would otherwise arise.
#[derive(Debug)]
pub struct Context<'a, M> {
    me: NodeId,
    outbox: &'a mut Vec<(NodeId, M)>,
    tick_armed: bool,
}

impl<'a, M> Context<'a, M> {
    /// Creates a context for `me` that buffers sends into `outbox`.
    ///
    /// Public so that envelope protocols (e.g. the reliable-delivery layer
    /// in `ard-core`) can run an inner protocol's handlers against a staging
    /// outbox and post-process the sends before the runner flushes them.
    pub fn new(me: NodeId, outbox: &'a mut Vec<(NodeId, M)>) -> Self {
        Context {
            me,
            outbox,
            tick_armed: false,
        }
    }

    /// The id of the node this handler is running on.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// Queues `msg` for delivery to `to`.
    ///
    /// # Panics
    ///
    /// Panics if `to == self.me()`; protocols must handle self-interaction
    /// internally. (The knowledge check happens at flush time in the runner.)
    pub fn send(&mut self, to: NodeId, msg: M) {
        assert_ne!(
            to, self.me,
            "protocol bug: node {} attempted to send a message to itself",
            self.me
        );
        self.outbox.push((to, msg));
    }

    /// Number of messages queued so far in this handler call.
    pub fn queued(&self) -> usize {
        self.outbox.len()
    }

    /// Requests a timer tick: after this handler returns, the runner hands
    /// the scheduler a [`Choice::Tick`](crate::Choice::Tick) token for this
    /// node, to be fired at an adversary-chosen later point (virtual time).
    ///
    /// Ticks may arrive spuriously (e.g. re-armed across a crash/restart);
    /// protocols must treat a tick as "some virtual time passed", not as a
    /// precise alarm.
    pub fn arm_tick(&mut self) {
        self.tick_armed = true;
    }

    /// Whether this handler call armed a tick.
    ///
    /// Consumed by the runner after each handler; public so envelope
    /// protocols that run an inner protocol against a staging [`Context`]
    /// can propagate the inner protocol's tick request to the real one.
    pub fn tick_armed(&self) -> bool {
        self.tick_armed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_buffers_in_order() {
        let mut out: Vec<(NodeId, u8)> = Vec::new();
        let mut ctx = Context::new(NodeId::new(0), &mut out);
        ctx.send(NodeId::new(1), 10);
        ctx.send(NodeId::new(2), 20);
        assert_eq!(ctx.queued(), 2);
        assert_eq!(out, vec![(NodeId::new(1), 10), (NodeId::new(2), 20)]);
    }

    #[test]
    #[should_panic(expected = "send a message to itself")]
    fn self_send_panics() {
        let mut out: Vec<(NodeId, u8)> = Vec::new();
        let mut ctx = Context::new(NodeId::new(3), &mut out);
        ctx.send(NodeId::new(3), 1);
    }
}
