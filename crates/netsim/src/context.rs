use crate::NodeId;

/// Handle through which a protocol node emits messages during a handler call.
///
/// Sends are buffered and flushed by the [`Runner`](crate::Runner) after the
/// handler returns, at which point the knowledge-graph constraint is
/// enforced: the destination must be an id the sending node has learned.
///
/// A node cannot send to itself; the paper's algorithm "simulates the message
/// sending internally" in the one place (a leader querying itself) where a
/// self-message would otherwise arise.
#[derive(Debug)]
pub struct Context<'a, M> {
    me: NodeId,
    outbox: &'a mut Vec<(NodeId, M)>,
}

impl<'a, M> Context<'a, M> {
    pub(crate) fn new(me: NodeId, outbox: &'a mut Vec<(NodeId, M)>) -> Self {
        Context { me, outbox }
    }

    /// The id of the node this handler is running on.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// Queues `msg` for delivery to `to`.
    ///
    /// # Panics
    ///
    /// Panics if `to == self.me()`; protocols must handle self-interaction
    /// internally. (The knowledge check happens at flush time in the runner.)
    pub fn send(&mut self, to: NodeId, msg: M) {
        assert_ne!(
            to, self.me,
            "protocol bug: node {} attempted to send a message to itself",
            self.me
        );
        self.outbox.push((to, msg));
    }

    /// Number of messages queued so far in this handler call.
    pub fn queued(&self) -> usize {
        self.outbox.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_buffers_in_order() {
        let mut out: Vec<(NodeId, u8)> = Vec::new();
        let mut ctx = Context::new(NodeId::new(0), &mut out);
        ctx.send(NodeId::new(1), 10);
        ctx.send(NodeId::new(2), 20);
        assert_eq!(ctx.queued(), 2);
        assert_eq!(out, vec![(NodeId::new(1), 10), (NodeId::new(2), 20)]);
    }

    #[test]
    #[should_panic(expected = "send a message to itself")]
    fn self_send_panics() {
        let mut out: Vec<(NodeId, u8)> = Vec::new();
        let mut ctx = Context::new(NodeId::new(3), &mut out);
        ctx.send(NodeId::new(3), 1);
    }
}
