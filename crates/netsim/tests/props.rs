//! Property-based tests of the simulator's core guarantees: per-link FIFO
//! under arbitrary schedules, knowledge monotonicity, metering consistency
//! and quiescence.

use proptest::prelude::*;

use ard_netsim::{
    BoundedDelayScheduler, Context, Envelope, FifoScheduler, LifoScheduler, NodeId, Protocol,
    RandomScheduler, Runner, Scheduler,
};

/// A message carrying a per-sender sequence number.
#[derive(Clone, Debug)]
struct Numbered {
    seq: u32,
    payload_ids: Vec<NodeId>,
}

impl Envelope for Numbered {
    fn kind(&self) -> &'static str {
        "numbered"
    }
    fn for_each_carried_id(&self, f: &mut dyn FnMut(NodeId)) {
        self.payload_ids.iter().copied().for_each(f);
    }
    fn aux_bits(&self) -> u64 {
        32
    }
}

/// Each node, on wake, sends a numbered burst to every initially-known peer
/// and introduces one random known id per message; receivers assert
/// per-sender ordering.
struct BurstNode {
    peers: Vec<NodeId>,
    burst: u32,
    last_seen: std::collections::HashMap<NodeId, u32>,
    violations: usize,
}

impl Protocol for BurstNode {
    type Message = Numbered;

    fn on_wake(&mut self, ctx: &mut Context<'_, Numbered>) {
        for s in 0..self.burst {
            for (i, &p) in self.peers.iter().enumerate() {
                // Introduce another peer's id in the payload (knowledge).
                let intro = self.peers[(i + s as usize) % self.peers.len()];
                ctx.send(
                    p,
                    Numbered {
                        seq: s,
                        payload_ids: vec![intro],
                    },
                );
            }
        }
    }

    fn on_message(&mut self, from: NodeId, msg: Numbered, _ctx: &mut Context<'_, Numbered>) {
        let prev = self.last_seen.insert(from, msg.seq);
        if let Some(prev) = prev {
            if msg.seq <= prev {
                self.violations += 1;
            }
        }
    }
}

fn build(n: usize, degree: usize, burst: u32) -> Runner<BurstNode> {
    let peers_of = |i: usize| -> Vec<NodeId> {
        let mut peers: Vec<NodeId> = (1..=degree)
            .map(|d| NodeId::new((i + d) % n))
            .filter(|&p| p != NodeId::new(i))
            .collect();
        peers.sort_unstable();
        peers.dedup();
        peers
    };
    let nodes = (0..n)
        .map(|i| BurstNode {
            peers: peers_of(i),
            burst,
            last_seen: Default::default(),
            violations: 0,
        })
        .collect();
    let knowledge = (0..n).map(peers_of).collect();
    Runner::new(nodes, knowledge)
}

fn run_with(sched: &mut dyn Scheduler, n: usize, degree: usize, burst: u32) -> Runner<BurstNode> {
    let mut runner = build(n, degree, burst);
    runner.enqueue_wake_all(sched);
    runner.run(sched, 1_000_000).expect("quiesces");
    runner
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Per-link FIFO holds for every scheduler, seed and load.
    #[test]
    fn per_link_fifo_always_holds(
        n in 2usize..12,
        degree in 1usize..4,
        burst in 1u32..8,
        seed in 0u64..10_000,
        kind in 0u8..4,
    ) {
        let mut sched: Box<dyn Scheduler> = match kind {
            0 => Box::new(FifoScheduler::new()),
            1 => Box::new(LifoScheduler::new()),
            2 => Box::new(RandomScheduler::seeded(seed)),
            _ => Box::new(BoundedDelayScheduler::new(1 + seed % 9, seed)),
        };
        let runner = run_with(sched.as_mut(), n, degree, burst);
        for node in runner.nodes() {
            prop_assert_eq!(node.violations, 0);
        }
    }

    /// Message and delivery counts agree at quiescence, whatever the
    /// schedule (reliable network: everything sent is delivered).
    #[test]
    fn sent_equals_delivered_at_quiescence(
        n in 2usize..10,
        burst in 1u32..6,
        seed in 0u64..10_000,
    ) {
        let mut sched = RandomScheduler::seeded(seed);
        let runner = run_with(&mut sched, n, 2, burst);
        prop_assert_eq!(runner.metrics().total_messages(), runner.metrics().deliveries());
        prop_assert!(runner.links_empty());
    }

    /// Knowledge only grows, and every delivered payload id is known to the
    /// receiver afterwards.
    #[test]
    fn knowledge_is_monotone_and_covers_payloads(
        n in 3usize..10,
        seed in 0u64..10_000,
    ) {
        let mut sched = RandomScheduler::seeded(seed);
        let mut runner = build(n, 2, 2);
        runner.enqueue_wake_all(&mut sched);
        // Snapshot knowledge after each step; it must never shrink.
        let mut before: Vec<Vec<bool>> = (0..n)
            .map(|u| (0..n).map(|v| runner.knows(NodeId::new(u), NodeId::new(v))).collect())
            .collect();
        while runner.step(&mut sched) {
            for (u, row) in before.iter_mut().enumerate() {
                for (v, was_known) in row.iter_mut().enumerate() {
                    let now = runner.knows(NodeId::new(u), NodeId::new(v));
                    prop_assert!(now || !*was_known, "knowledge shrank at {u}→{v}");
                    *was_known = now;
                }
            }
        }
        // Receivers know every sender they heard from.
        for u in 0..n {
            for &from in runner.node(NodeId::new(u)).last_seen.keys() {
                prop_assert!(runner.knows(NodeId::new(u), from));
            }
        }
    }

    /// The same seed gives the same execution (full determinism).
    #[test]
    fn executions_are_deterministic(n in 2usize..10, seed in 0u64..10_000) {
        let run = |seed| {
            let mut sched = RandomScheduler::seeded(seed);
            let runner = run_with(&mut sched, n, 2, 3);
            (
                runner.metrics().total_messages(),
                runner.metrics().total_bits(),
                runner.metrics().max_causal_depth(),
            )
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    /// Total messages are schedule-independent for this oblivious workload
    /// (every node sends a fixed burst regardless of what it receives).
    #[test]
    fn fixed_workload_is_schedule_independent(n in 2usize..10, seed in 0u64..10_000) {
        let mut fifo = FifoScheduler::new();
        let mut rand_sched = RandomScheduler::seeded(seed);
        let a = run_with(&mut fifo, n, 2, 3).metrics().total_messages();
        let b = run_with(&mut rand_sched, n, 2, 3).metrics().total_messages();
        prop_assert_eq!(a, b);
    }
}
