//! Equivalence of the two knowledge-set representations.
//!
//! Above `DENSE_KNOWLEDGE_MAX` nodes the runner swaps its dense `BitSet`
//! knowledge for the interval-coded `IntervalSet`; the swap is only sound
//! if the two structures are observationally identical. These properties
//! drive both through the same operation sequences — scattered singletons,
//! run-heavy interval fills, and interleaved unions — and require equal
//! answers from `insert` (including its "was new" return), `contains`,
//! `len` and in-order iteration.

use proptest::prelude::*;

use ard_netsim::{BitSet, IntervalSet};

const UNIVERSE: usize = 4096;

/// Asserts every observable of the pair matches.
fn assert_equivalent(dense: &BitSet, runs: &IntervalSet) {
    assert_eq!(dense.len(), runs.len(), "len diverged");
    assert_eq!(dense.is_empty(), runs.is_empty());
    let dense_ids: Vec<usize> = dense.iter().collect();
    let run_ids: Vec<usize> = runs.iter().collect();
    assert_eq!(dense_ids, run_ids, "iteration order diverged");
    for probe in [0, 1, 63, 64, UNIVERSE / 2, UNIVERSE - 1] {
        assert_eq!(dense.contains(probe), runs.contains(probe), "contains({probe})");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Scattered single-id inserts: the adversarial case for a run coder.
    #[test]
    fn scattered_inserts_are_equivalent(ids in proptest::collection::vec(0..UNIVERSE, 0..300)) {
        let mut dense = BitSet::with_capacity(UNIVERSE);
        let mut runs = IntervalSet::new();
        for id in ids {
            prop_assert_eq!(dense.insert(id), runs.insert(id), "insert({}) newness", id);
        }
        assert_equivalent(&dense, &runs);
    }

    /// Interval fills in random order: the representative ARD workload
    /// (nodes learn whole contiguous clusters), which should coalesce runs.
    #[test]
    fn run_heavy_inserts_are_equivalent(
        intervals in proptest::collection::vec((0..UNIVERSE, 1..64usize), 0..20),
    ) {
        let mut dense = BitSet::with_capacity(UNIVERSE);
        let mut runs = IntervalSet::new();
        for (start, len) in intervals {
            for id in start..(start + len).min(UNIVERSE) {
                prop_assert_eq!(dense.insert(id), runs.insert(id));
            }
        }
        assert_equivalent(&dense, &runs);
        // Coalescing sanity: half-open runs must stay sorted, disjoint and
        // non-adjacent (touching runs must have merged).
        for w in runs.runs().windows(2) {
            prop_assert!(w[0].1 < w[1].0, "runs {:?} should have coalesced", w);
        }
    }

    /// Unions against the same mixed workloads.
    #[test]
    fn unions_are_equivalent(
        left in proptest::collection::vec(0..UNIVERSE, 0..200),
        right in proptest::collection::vec((0..UNIVERSE, 1..32usize), 0..12),
    ) {
        let mut dense_l = BitSet::with_capacity(UNIVERSE);
        let mut runs_l = IntervalSet::new();
        for id in left {
            dense_l.insert(id);
            runs_l.insert(id);
        }
        let mut dense_r = BitSet::with_capacity(UNIVERSE);
        let mut runs_r = IntervalSet::new();
        for (start, len) in right {
            for id in start..(start + len).min(UNIVERSE) {
                dense_r.insert(id);
                runs_r.insert(id);
            }
        }
        dense_l.union_with(&dense_r);
        runs_l.union_with(&runs_r);
        assert_equivalent(&dense_l, &runs_l);
    }
}
