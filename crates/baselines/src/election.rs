//! Max-id flooding leader election for **strongly connected** graphs.
//!
//! The paper's §1 observes that on strongly connected networks, resource
//! discovery reduces to classic leader election — Cidon, Gopal & Kutten
//! \[1\] achieve `O(n)` messages — and that the whole difficulty of the
//! problem lives in weakly connected, directed knowledge graphs. This
//! module provides the textbook comparison point: flood the maximum id seen
//! so far along the initial edges. It costs `O(|E₀| · n)` messages in the
//! worst case (each node re-floods at most `n` improvements), `O(|E₀|)` on
//! id-sorted-friendly orders, and terminates with every node agreeing on
//! the component's maximum id as leader.
//!
//! It intentionally solves only *election* (everyone knows the leader), not
//! full discovery (the leader does not learn everyone's id) — exactly the
//! gap the paper's algorithms fill.

use ard_netsim::{Context, Envelope, LivelockError, NodeId, Protocol, Runner, Scheduler};

/// A candidate-leader announcement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Candidate(pub NodeId);

impl Envelope for Candidate {
    fn kind(&self) -> &'static str {
        "candidate"
    }
    fn for_each_carried_id(&self, f: &mut dyn FnMut(NodeId)) {
        f(self.0);
    }
    fn aux_bits(&self) -> u64 {
        0
    }
}

/// One election node: tracks the best candidate and floods improvements to
/// its initial out-neighbours.
#[derive(Debug)]
pub struct ElectionNode {
    id: NodeId,
    peers: Vec<NodeId>,
    best: NodeId,
}

impl ElectionNode {
    /// Creates a node with initial out-neighbours `peers`.
    pub fn new(id: NodeId, peers: Vec<NodeId>) -> Self {
        ElectionNode {
            id,
            peers,
            best: id,
        }
    }

    /// This node's own id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The best (maximum) candidate this node has seen.
    pub fn leader(&self) -> NodeId {
        self.best
    }

    fn flood(&self, ctx: &mut Context<'_, Candidate>) {
        for &p in &self.peers {
            ctx.send(p, Candidate(self.best));
        }
    }
}

impl Protocol for ElectionNode {
    type Message = Candidate;

    fn on_wake(&mut self, ctx: &mut Context<'_, Candidate>) {
        self.flood(ctx);
    }

    fn on_message(&mut self, _from: NodeId, msg: Candidate, ctx: &mut Context<'_, Candidate>) {
        if msg.0 > self.best {
            self.best = msg.0;
            self.flood(ctx);
        }
    }
}

/// Runs the election to quiescence.
///
/// # Errors
///
/// Returns [`LivelockError`] if `max_steps` is exhausted first.
///
/// # Panics
///
/// Panics if `graph` is not strongly connected — on merely weakly connected
/// graphs max-id flooding does not converge to agreement, which is the
/// paper's point.
pub fn run(
    graph: &ard_graph::KnowledgeGraph,
    sched: &mut dyn Scheduler,
    max_steps: u64,
) -> Result<Runner<ElectionNode>, LivelockError> {
    assert!(
        ard_graph::components::is_strongly_connected(graph),
        "max-id election requires a strongly connected graph"
    );
    let nodes = graph
        .ids()
        .map(|id| ElectionNode::new(id, graph.out_edges(id).to_vec()))
        .collect();
    let mut runner = Runner::new(nodes, graph.initial_knowledge());
    runner.enqueue_wake_all(sched);
    runner.run(sched, max_steps)?;
    Ok(runner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ard_graph::gen;
    use ard_netsim::{LifoScheduler, RandomScheduler};

    #[test]
    fn ring_elects_max_id() {
        let graph = gen::ring(17);
        let mut sched = RandomScheduler::seeded(4);
        let runner = run(&graph, &mut sched, 1_000_000).unwrap();
        for node in runner.nodes() {
            assert_eq!(node.leader(), NodeId::new(16));
        }
    }

    #[test]
    fn complete_graph_elects_max_id_cheaply() {
        let graph = gen::complete(10);
        let mut sched = LifoScheduler::new();
        let runner = run(&graph, &mut sched, 1_000_000).unwrap();
        for node in runner.nodes() {
            assert_eq!(node.leader(), NodeId::new(9));
        }
    }

    #[test]
    fn ring_cost_is_linear_in_edges_times_improvements() {
        let graph = gen::ring(64);
        let mut sched = RandomScheduler::seeded(0);
        let runner = run(&graph, &mut sched, 1_000_000).unwrap();
        // Worst case O(n²) on a ring; typical far less. Sanity-bound it.
        assert!(runner.metrics().total_messages() <= 64 * 64);
    }

    #[test]
    #[should_panic(expected = "strongly connected")]
    fn weakly_connected_is_rejected() {
        let graph = gen::path(4);
        let mut sched = RandomScheduler::seeded(0);
        let _ = run(&graph, &mut sched, 1_000);
    }
}
