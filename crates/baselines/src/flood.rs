//! Naive asynchronous flooding ("swamping").
//!
//! Whenever a node learns ids it did not know, it re-broadcasts its entire
//! knowledge to every node it knows. On any weakly connected graph this
//! converges to every node knowing every node in its component (strictly
//! stronger than resource discovery's requirements — the leader can then be
//! chosen locally as the maximum id), but at `Θ(n²)`-ish messages and
//! `Θ(n³ log n)`-ish bits. It is the "do nothing clever" yardstick of
//! experiment E9.

use std::collections::BTreeSet;

use ard_netsim::{Context, LivelockError, NodeId, Protocol, Runner, Scheduler};

use crate::KnownSet;

/// One flooding node: remembers everything it has heard and re-broadcasts
/// on growth.
#[derive(Debug)]
pub struct FloodNode {
    id: NodeId,
    known: BTreeSet<NodeId>,
}

impl FloodNode {
    /// Creates a node that initially knows `initial` (its `E₀` out-edges).
    pub fn new(id: NodeId, initial: Vec<NodeId>) -> Self {
        let mut known: BTreeSet<NodeId> = initial.into_iter().collect();
        known.insert(id);
        FloodNode { id, known }
    }

    /// Everything this node currently knows (including itself).
    pub fn known(&self) -> &BTreeSet<NodeId> {
        &self.known
    }

    fn broadcast(&self, ctx: &mut Context<'_, KnownSet>) {
        let payload: Vec<NodeId> = self.known.iter().copied().collect();
        for &v in &self.known {
            if v != self.id {
                ctx.send(v, KnownSet(payload.clone()));
            }
        }
    }
}

impl Protocol for FloodNode {
    type Message = KnownSet;

    fn on_wake(&mut self, ctx: &mut Context<'_, KnownSet>) {
        self.broadcast(ctx);
    }

    fn on_message(&mut self, from: NodeId, msg: KnownSet, ctx: &mut Context<'_, KnownSet>) {
        let before = self.known.len();
        self.known.insert(from);
        self.known.extend(msg.0);
        if self.known.len() > before {
            self.broadcast(ctx);
        }
    }
}

/// Builds a flooding network over the graph's initial knowledge.
pub fn network(graph: &ard_graph::KnowledgeGraph) -> Runner<FloodNode> {
    let nodes = graph
        .ids()
        .map(|id| FloodNode::new(id, graph.out_edges(id).to_vec()))
        .collect();
    Runner::new(nodes, graph.initial_knowledge())
}

/// Runs flooding to quiescence and returns the elected leader of each node
/// (the maximum id it knows — identical across a component on success).
///
/// # Errors
///
/// Returns [`LivelockError`] if `max_steps` is exhausted first.
pub fn run(
    graph: &ard_graph::KnowledgeGraph,
    sched: &mut dyn Scheduler,
    max_steps: u64,
) -> Result<(Runner<FloodNode>, Vec<NodeId>), LivelockError> {
    let mut runner = network(graph);
    runner.enqueue_wake_all(sched);
    runner.run(sched, max_steps)?;
    let leaders = runner
        .nodes()
        .map(|n| *n.known().iter().max().expect("knows at least itself"))
        .collect();
    Ok((runner, leaders))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ard_graph::{components, gen};
    use ard_netsim::RandomScheduler;

    #[test]
    fn flooding_reaches_full_knowledge() {
        let graph = gen::random_weakly_connected(24, 40, 3);
        let mut sched = RandomScheduler::seeded(5);
        let (runner, leaders) = run(&graph, &mut sched, 2_000_000).unwrap();
        for node in runner.nodes() {
            assert_eq!(node.known().len(), 24);
        }
        assert!(leaders.iter().all(|&l| l == NodeId::new(23)));
    }

    #[test]
    fn flooding_respects_components() {
        let graph = gen::random_multi_component(2, 8, 6, 1);
        let mut sched = RandomScheduler::seeded(2);
        let (runner, leaders) = run(&graph, &mut sched, 2_000_000).unwrap();
        let comp = components::weak_component_ids(&graph);
        for v in 0..16 {
            let node = runner.node(NodeId::new(v));
            assert_eq!(node.known().len(), 8, "node {v}");
            // Leader consistent within the component.
            let mate = (0..16).find(|&u| u != v && comp[u] == comp[v]).unwrap();
            assert_eq!(leaders[v], leaders[mate]);
        }
    }

    #[test]
    fn flooding_cost_is_superlinear() {
        let cost = |n: usize| {
            let graph = gen::random_weakly_connected(n, 2 * n, 7);
            let mut sched = RandomScheduler::seeded(7);
            let (runner, _) = run(&graph, &mut sched, 10_000_000).unwrap();
            runner.metrics().total_messages()
        };
        let small = cost(16);
        let large = cost(64);
        // 4x nodes should cost far more than 4x messages.
        assert!(large > small * 8, "flooding {small} -> {large}");
    }
}
