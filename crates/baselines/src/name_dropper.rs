//! The *Name-Dropper* algorithm of Harchol-Balter, Leighton & Lewin
//! (PODC 1999) — the randomized synchronous baseline of the paper's §1.1.
//!
//! Every round, every node chooses one node uniformly from its current
//! neighbour list and sends it that entire list. The original analysis
//! shows that after `O(log² n)` rounds every node knows every node in its
//! weakly connected component with high probability, for `O(n log² n)`
//! messages and `O(n² log³ n)` bits. Both the round budget and the
//! termination condition require knowing `n` — one of the assumptions the
//! Abraham–Dolev algorithms remove.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use std::collections::BTreeSet;

use ard_netsim::sync::{SyncNetwork, SyncProtocol};
use ard_netsim::{Context, NodeId};

use crate::KnownSet;

/// One Name-Dropper node.
#[derive(Debug)]
pub struct NameDropperNode {
    id: NodeId,
    known: BTreeSet<NodeId>,
    rng: StdRng,
    rounds_left: u64,
}

impl NameDropperNode {
    /// Creates a node knowing `initial`, gossiping for `rounds` rounds.
    pub fn new(id: NodeId, initial: Vec<NodeId>, rounds: u64, seed: u64) -> Self {
        let mut known: BTreeSet<NodeId> = initial.into_iter().collect();
        known.insert(id);
        NameDropperNode {
            id,
            known,
            rng: StdRng::seed_from_u64(seed ^ (id.index() as u64).wrapping_mul(0x9e37_79b9)),
            rounds_left: rounds,
        }
    }

    /// Everything this node currently knows (including itself).
    pub fn known(&self) -> &BTreeSet<NodeId> {
        &self.known
    }
}

impl SyncProtocol for NameDropperNode {
    type Message = KnownSet;

    fn on_round(
        &mut self,
        _round: u64,
        inbox: Vec<(NodeId, KnownSet)>,
        ctx: &mut Context<'_, KnownSet>,
    ) {
        for (from, msg) in inbox {
            self.known.insert(from);
            self.known.extend(msg.0);
        }
        if self.rounds_left == 0 {
            return;
        }
        self.rounds_left -= 1;
        let others: Vec<NodeId> = self
            .known
            .iter()
            .copied()
            .filter(|&v| v != self.id)
            .collect();
        if others.is_empty() {
            return;
        }
        let target = others[self.rng.gen_range(0..others.len())];
        ctx.send(target, KnownSet(self.known.iter().copied().collect()));
    }
}

/// The standard round budget: `⌈c · log₂² n⌉` with `c = 3`, which makes the
/// with-high-probability guarantee hold comfortably at experiment scales.
pub fn round_budget(n: usize) -> u64 {
    let log = (usize::BITS - n.max(2).saturating_sub(1).leading_zeros()) as u64;
    3 * log * log + 3
}

/// Builds and runs Name-Dropper on `graph` for the standard round budget.
/// Returns the finished network (inspect per-node [`NameDropperNode::known`]
/// and the [`Metrics`](ard_netsim::Metrics)).
pub fn run(graph: &ard_graph::KnowledgeGraph, seed: u64) -> SyncNetwork<NameDropperNode> {
    let rounds = round_budget(graph.len());
    let nodes = graph
        .ids()
        .map(|id| NameDropperNode::new(id, graph.out_edges(id).to_vec(), rounds, seed))
        .collect();
    let mut net = SyncNetwork::new(nodes, graph.initial_knowledge());
    net.run(rounds + 2);
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use ard_graph::gen;

    #[test]
    fn name_dropper_discovers_everyone_whp() {
        for seed in 0..5 {
            let graph = gen::random_weakly_connected(50, 80, seed);
            let net = run(&graph, seed);
            for node in net.nodes() {
                assert_eq!(
                    node.known().len(),
                    50,
                    "seed {seed}: node {} knows only {:?}",
                    node.id,
                    node.known().len()
                );
            }
        }
    }

    #[test]
    fn message_count_is_n_per_active_round() {
        let graph = gen::ring(32);
        let net = run(&graph, 1);
        let m = net.metrics().total_messages();
        let rounds = round_budget(32);
        assert!(m <= 32 * rounds, "{m} messages over {rounds} rounds");
        assert!(m >= 32 * (rounds - 1), "{m} messages over {rounds} rounds");
    }

    #[test]
    fn round_budget_grows_polylog() {
        assert!(round_budget(16) < round_budget(1 << 16));
        assert!(round_budget(1 << 16) <= 3 * 16 * 16 + 3);
    }

    #[test]
    fn works_on_hard_directed_shapes() {
        // A directed path is the hardest weakly-connected case for gossip:
        // information can initially flow only one way.
        let graph = gen::path(20);
        let net = run(&graph, 9);
        for node in net.nodes() {
            assert_eq!(node.known().len(), 20);
        }
    }
}
