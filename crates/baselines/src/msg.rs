use ard_netsim::{Envelope, NodeId};

/// The single message type the gossip baselines need: a set of node ids.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KnownSet(pub Vec<NodeId>);

impl Envelope for KnownSet {
    fn kind(&self) -> &'static str {
        "known set"
    }
    fn for_each_carried_id(&self, f: &mut dyn FnMut(NodeId)) {
        self.0.iter().copied().for_each(f);
    }
    fn carried_id_count(&self) -> usize {
        self.0.len()
    }
    fn aux_bits(&self) -> u64 {
        32 // length prefix
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_scale_with_payload() {
        let m = KnownSet((0..10).map(NodeId::new).collect());
        assert_eq!(m.carried_ids().len(), 10);
        assert_eq!(m.bits(8), 10 * 8 + 32 + 4);
    }
}
