//! Prior resource-discovery algorithms, for comparison against the
//! Abraham–Dolev algorithms (experiment E9 of the reproduction).
//!
//! The paper's §1.1 surveys three families of prior work; this crate
//! implements one representative of each on the same simulator substrate
//! (and therefore with directly comparable [`ard_netsim::Metrics`]):
//!
//! * [`name_dropper`] — the randomized synchronous *Name-Dropper* algorithm
//!   of Harchol-Balter, Leighton & Lewin \[2\]: every round, every node
//!   forwards its whole neighbour list to one random known node. With high
//!   probability all nodes know everyone after `O(log² n)` rounds, giving
//!   `O(n log² n)` messages and `O(n² log³ n)` bits. Requires knowing `n`
//!   (to pick the round budget) and synchrony — the two assumptions the
//!   paper's algorithms remove.
//! * [`law_siu`] — a Law–Siu-style randomized push–pull algorithm \[5\]:
//!   random-mate root merging achieving `O(n log n)` messages in
//!   `O(log n)` rounds w.h.p. (the announced bounds; the full algorithm was
//!   never published, see the module docs for the substitution).
//! * [`flood`] — naive asynchronous flooding ("swamping"): every node
//!   forwards everything it knows to everyone it knows whenever it learns
//!   something new. Converges on any weakly connected graph with no
//!   assumptions at all, at `Θ(n²)`-ish message and `Θ(n³ log n)`-ish bit
//!   cost — the baseline that motivates doing anything smarter.
//! * [`election`] — max-id flooding leader election for *strongly
//!   connected* graphs, standing in for Cidon, Gopal & Kutten \[1\]
//!   (`O(n)` messages with their machinery; ours is the simple `O(|E|·D)`
//!   textbook version, which is enough to demonstrate the paper's point
//!   that strong connectivity makes the problem easy).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod election;
pub mod flood;
pub mod law_siu;
mod msg;
pub mod name_dropper;

pub use msg::KnownSet;
