//! A Law–Siu-style randomized synchronous algorithm (§1.1's \[5\]).
//!
//! Law & Siu's brief announcement achieves, with high probability,
//! `O(n log n)` messages and `O(log n)` rounds on weakly connected graphs by
//! combining random-mate cluster merging with elements of Name-Dropper. The
//! full algorithm was never published beyond the announcement; this module
//! implements the standard *push–pull random-mate* interpretation that
//! matches the announced bounds (documented as a substitution in
//! DESIGN.md):
//!
//! * every node keeps a candidate **root** (initially itself) and a set of
//!   known ids;
//! * each round, every node **pushes** its root and known set to one random
//!   known node and **pulls** by answering every push with its own;
//! * roots merge toward the minimum id seen, so clusters coalesce like
//!   randomized linking; with the push–pull exchange the expected number of
//!   clusters halves per `O(1)` rounds, giving `O(log n)` rounds and
//!   `O(n log n)` messages w.h.p.
//!
//! Like Name-Dropper (and unlike the paper's algorithms) it needs synchrony
//! and knowledge of `n` for its round budget.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use std::collections::BTreeSet;

use ard_netsim::sync::{SyncNetwork, SyncProtocol};
use ard_netsim::{Context, Envelope, NodeId};

/// One push or pull message: the sender's current root candidate plus its
/// known-id set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RootGossip {
    /// Sender's current root candidate (minimum id seen).
    pub root: NodeId,
    /// Sender's known ids.
    pub known: Vec<NodeId>,
    /// Whether the receiver should answer (push) or not (pull answer).
    pub wants_reply: bool,
}

impl Envelope for RootGossip {
    fn kind(&self) -> &'static str {
        "root gossip"
    }
    fn for_each_carried_id(&self, f: &mut dyn FnMut(NodeId)) {
        f(self.root);
        self.known.iter().copied().for_each(f);
    }
    fn carried_id_count(&self) -> usize {
        1 + self.known.len()
    }
    fn aux_bits(&self) -> u64 {
        32 + 1
    }
}

/// One node of the Law–Siu-style algorithm.
#[derive(Debug)]
pub struct LawSiuNode {
    id: NodeId,
    root: NodeId,
    known: BTreeSet<NodeId>,
    rng: StdRng,
    rounds_left: u64,
}

impl LawSiuNode {
    /// Creates a node knowing `initial`, gossiping for `rounds` rounds.
    pub fn new(id: NodeId, initial: Vec<NodeId>, rounds: u64, seed: u64) -> Self {
        let mut known: BTreeSet<NodeId> = initial.into_iter().collect();
        known.insert(id);
        LawSiuNode {
            id,
            root: id,
            known,
            rng: StdRng::seed_from_u64(seed ^ (id.index() as u64).wrapping_mul(0x1234_5677)),
            rounds_left: rounds,
        }
    }

    /// The node's current leader candidate (converges to the component's
    /// minimum id).
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Everything this node knows (including itself).
    pub fn known(&self) -> &BTreeSet<NodeId> {
        &self.known
    }

    fn absorb(&mut self, from: NodeId, msg: &RootGossip) {
        self.known.insert(from);
        self.known.extend(msg.known.iter().copied());
        self.known.insert(msg.root);
        if msg.root < self.root {
            self.root = msg.root;
        }
    }
}

impl SyncProtocol for LawSiuNode {
    type Message = RootGossip;

    fn on_round(
        &mut self,
        _round: u64,
        inbox: Vec<(NodeId, RootGossip)>,
        ctx: &mut Context<'_, RootGossip>,
    ) {
        // Pull phase: answer last round's pushes and absorb everything.
        let mut reply_to = Vec::new();
        for (from, msg) in inbox {
            if msg.wants_reply {
                reply_to.push(from);
            }
            self.absorb(from, &msg);
        }
        for from in reply_to {
            ctx.send(
                from,
                RootGossip {
                    root: self.root,
                    known: self.known.iter().copied().collect(),
                    wants_reply: false,
                },
            );
        }
        // Push phase.
        if self.rounds_left == 0 {
            return;
        }
        self.rounds_left -= 1;
        let others: Vec<NodeId> = self
            .known
            .iter()
            .copied()
            .filter(|&v| v != self.id)
            .collect();
        if others.is_empty() {
            return;
        }
        let target = others[self.rng.gen_range(0..others.len())];
        ctx.send(
            target,
            RootGossip {
                root: self.root,
                known: self.known.iter().copied().collect(),
                wants_reply: true,
            },
        );
    }
}

/// The announced round budget: `O(log n)` with a safety constant.
pub fn round_budget(n: usize) -> u64 {
    let log = (usize::BITS - n.max(2).saturating_sub(1).leading_zeros()) as u64;
    6 * log + 6
}

/// Builds and runs the algorithm on `graph` for the standard round budget.
pub fn run(graph: &ard_graph::KnowledgeGraph, seed: u64) -> SyncNetwork<LawSiuNode> {
    let rounds = round_budget(graph.len());
    let nodes = graph
        .ids()
        .map(|id| LawSiuNode::new(id, graph.out_edges(id).to_vec(), rounds, seed))
        .collect();
    let mut net = SyncNetwork::new(nodes, graph.initial_knowledge());
    net.run(rounds + 2);
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use ard_graph::gen;

    #[test]
    fn converges_to_one_root_whp() {
        for seed in 0..5 {
            let graph = gen::random_weakly_connected(60, 120, seed);
            let net = run(&graph, seed);
            let roots: BTreeSet<NodeId> = net.nodes().map(|n| n.root()).collect();
            assert_eq!(roots.len(), 1, "seed {seed}: roots {roots:?}");
            assert_eq!(roots.into_iter().next().unwrap(), NodeId::new(0));
        }
    }

    #[test]
    fn rounds_are_logarithmic() {
        let graph = gen::random_weakly_connected(128, 256, 7);
        let net = run(&graph, 7);
        assert!(net.round() <= round_budget(128) + 2);
        assert!(round_budget(128) < 60);
    }

    #[test]
    fn message_count_is_n_log_n_ish() {
        let n = 128;
        let graph = gen::random_weakly_connected(n, 2 * n, 3);
        let net = run(&graph, 3);
        let m = net.metrics().total_messages();
        // push + pull ≤ 2·n·rounds.
        assert!(m <= 2 * (n as u64) * round_budget(n));
        assert!(
            m >= (n as u64) * (round_budget(n) - 2),
            "pushes happen every round"
        );
    }

    #[test]
    fn everyone_learns_everyone() {
        let graph = gen::path(40);
        let net = run(&graph, 11);
        for node in net.nodes() {
            assert_eq!(node.known().len(), 40);
        }
    }
}
