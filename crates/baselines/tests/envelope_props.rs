//! Property tests of the baselines' [`Envelope`] impls: for every message
//! type, the non-allocating `for_each_carried_id` visitor yields exactly the
//! ids the `carried_ids()` convenience collects, in payload order, and the
//! hand-written `carried_id_count` overrides agree.

use proptest::prelude::*;

use ard_baselines::election::Candidate;
use ard_baselines::law_siu::RootGossip;
use ard_baselines::KnownSet;
use ard_netsim::{Envelope, NodeId};

fn nid() -> impl Strategy<Value = NodeId> {
    (0usize..512).prop_map(NodeId::new)
}

fn id_vec() -> impl Strategy<Value = Vec<NodeId>> {
    prop::collection::vec(nid(), 0..16)
}

fn assert_visitor_matches<E: Envelope>(msg: &E, expected: &[NodeId]) -> Result<(), TestCaseError> {
    let mut visited = Vec::new();
    msg.for_each_carried_id(&mut |id| visited.push(id));
    prop_assert_eq!(&visited[..], expected);
    prop_assert_eq!(msg.carried_ids(), expected.to_vec());
    prop_assert_eq!(msg.carried_id_count(), expected.len());
    Ok(())
}

proptest! {
    /// Gossip baselines: a `KnownSet` carries exactly its id vector.
    #[test]
    fn known_set_visitor_matches(ids in id_vec()) {
        assert_visitor_matches(&KnownSet(ids.clone()), &ids)?;
    }

    /// Leader election: a `Candidate` carries exactly its one id.
    #[test]
    fn candidate_visitor_matches(id in nid()) {
        assert_visitor_matches(&Candidate(id), &[id])?;
    }

    /// Law–Siu push–pull: a `RootGossip` carries its root followed by its
    /// known set, in that order.
    #[test]
    fn root_gossip_visitor_matches(
        root in nid(),
        known in id_vec(),
        wants_reply in any::<bool>(),
    ) {
        let msg = RootGossip { root, known: known.clone(), wants_reply };
        let mut expected = vec![root];
        expected.extend(known);
        assert_visitor_matches(&msg, &expected)?;
    }
}
