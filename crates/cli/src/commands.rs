//! Subcommand implementations.

use std::collections::{BTreeSet, HashMap};
use std::fmt::Write as _;

use ard_core::{
    budgets, byzantine_meta, churn_meta, ByzantineDiscovery, Discovery, FaultyDiscovery, Variant,
};
use ard_lower_bounds::{tree_adversary, uf_reduction};
use ard_netsim::explore::{
    explore, explore_fork, fixtures, ExploreConfig, ExploreReport, ReduceMode,
};
use ard_netsim::shrink::shrink_jobs;
use ard_netsim::{
    ByzantinePlan, ChurnPlan, FaultPlan, NodeId, RandomScheduler, ReplayScheduler, Schedule,
    Scheduler,
};
use ard_overlay::{bootstrap, Key};
use ard_union_find::{alpha, OpSequence};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::spec;

/// A CLI failure: bad usage or a bad specification.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

impl From<spec::ParseSpecError> for CliError {
    fn from(e: spec::ParseSpecError) -> Self {
        CliError(e.to_string())
    }
}

fn usage() -> String {
    "\
usage: ard <command> [--flag value]...

commands:
  discover   run resource discovery
             --topology SPEC (default random:n=64,extra=128)
             --variant oblivious|bounded|adhoc (default adhoc)
             --scheduler fifo|lifo|random[:SEED]|bounded:D[,SEED] (default random)
             --shards N    execute on N worker threads (needs --scheduler
                           fifo); output is byte-identical at any N
             --max-steps N override the livelock step budget
             --trace N     print the first N trace events
             --dot PATH    write the final state as Graphviz DOT
             --stats       print per-node / per-link traffic hot spots
             --faults drop=P,dup=P,crash=N[,seed=S]
                           run under fault injection: lossy/duplicating
                           links and N crash/restart events, with every
                           node wrapped in the reliable-delivery layer
             --byzantine f=K[,seed=S][,class=C]
                           run with K seeded Byzantine nodes (classes:
                           equivocate, fabricate, silence, stale-restart;
                           default all) and report which guarantees
                           survive instead of asserting them
             --churn rate=R[,seed=S]
                           withhold ⌈R·n⌉ initial wake-ups and replay them
                           as scheduled joins, with as many departures
             --record PATH write the recorded fault schedule for replay
             --sweep T     run T independent trials (scheduler seeds S,
                           S+1, …; needs --scheduler random[:S]), one
                           summary line each
             --jobs N      with --sweep: run trials on N worker threads
                           (same output as 1)
  adversary  run the Theorem 1 subtree-freezing adversary
             --levels I    tree depth (default 8)
  reduction  run the Theorem 2 union-find reduction
             --sets N --finds M [--adversarial] [--seed S]
  overlay    discover, bootstrap a DHT ring and serve lookups
             --n N --lookups K [--seed S]
  baselines  compare against name-dropper / law-siu / flooding
             --n N [--seed S]
             --seeds T     run T independent trials (seeds S, S+3, S+6, …)
             --jobs N      run trials on N worker threads (same output as 1)
  explore    search interleavings for requirement/budget violations
             --topology SPEC (default random:n=16,extra=24)
             --variant oblivious|bounded|adhoc (default adhoc)
             --system discovery|racy:K|fragile:K|equiv:K (default
                           discovery; racy:K / fragile:K / equiv:K are
                           fixtures with a planted race / fault-dependent
                           / equivocation-dependent bug among K clients)
             --budget N    schedules to try: half random walks, half
                           branch-point DFS (default 64)
             --walks W     random walks to run before the DFS phase; the
                           remaining budget goes to DFS (default half;
                           --walks 0 makes the search pure DFS)
             --depth D     DFS branch-point depth (default 4)
             --seed S      base seed for the random walks (default 0)
             --faults drop=P,dup=P,crash=N[,seed=S]
                           inject faults into every candidate schedule, so
                           drops/dups/crashes join the search space
             --byzantine f=K[,seed=S][,class=C]
                           attach a Byzantine plan to every candidate
                           schedule, so forgeries/silence/stale restarts
                           join the search space
             --churn rate=R[,seed=S]
                           attach join/leave churn to every candidate
                           schedule
             --out PATH    file for the minimized failing schedule
                           (default ard-failure.schedule)
             --jobs N      worker threads for candidate runs; results are
                           byte-identical at any value (default 1)
             --reduce [sleep|none]
                           dynamic partial-order reduction of the DFS
                           phase: sleep sets + terminal-state dedup prune
                           interleavings that only reorder independent
                           events (bare --reduce means sleep; default none)
             --stats       print reduction counters (sleep-pruned,
                           state-deduped)
             --check-snapshots
                           debug: re-execute every checkpoint-resumed DFS
                           run from scratch and panic on divergence
  replay     re-execute a recorded schedule file byte-for-byte
             ard replay <file> [--shrink [--jobs N] [--out PATH]]
             --shrink      ddmin-minimize the replayed failure and write
                           the 1-minimal schedule (default <file>.min)
  help       print this text
"
    .to_string()
}

/// Parses `--key value` pairs.
fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, CliError> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| CliError(format!("expected --flag, got `{}`", args[i])))?;
        if key == "adversarial"
            || key == "check"
            || key == "stats"
            || key == "check-snapshots"
            || key == "shrink"
        {
            flags.insert(key.to_string(), "true".to_string());
            i += 1;
            continue;
        }
        if key == "reduce" {
            // Optional value: bare `--reduce` means sleep-set reduction;
            // `--reduce none` turns it off explicitly.
            match args.get(i + 1) {
                Some(value) if !value.starts_with("--") => {
                    flags.insert(key.to_string(), value.clone());
                    i += 2;
                }
                _ => {
                    flags.insert(key.to_string(), "sleep".to_string());
                    i += 1;
                }
            }
            continue;
        }
        let value = args
            .get(i + 1)
            .ok_or_else(|| CliError(format!("--{key} needs a value")))?;
        flags.insert(key.to_string(), value.clone());
        i += 2;
    }
    Ok(flags)
}

fn flag_usize(
    flags: &HashMap<String, String>,
    key: &str,
    default: usize,
) -> Result<usize, CliError> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| CliError(format!("--{key}: `{v}` is not a number"))),
    }
}

fn flag_u64(flags: &HashMap<String, String>, key: &str, default: u64) -> Result<u64, CliError> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| CliError(format!("--{key}: `{v}` is not a number"))),
    }
}

/// Executes a full command line (without the program name) and returns the
/// report text.
///
/// # Errors
///
/// Returns [`CliError`] on unknown commands, bad flags or bad specs.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let Some((command, rest)) = args.split_first() else {
        return Ok(usage());
    };
    match command.as_str() {
        "help" | "--help" | "-h" => Ok(usage()),
        "discover" => discover(parse_flags(rest)?),
        "adversary" => adversary(parse_flags(rest)?),
        "reduction" => reduction(parse_flags(rest)?),
        "overlay" => overlay(parse_flags(rest)?),
        "baselines" => baselines(parse_flags(rest)?),
        "explore" => explore_cmd(parse_flags(rest)?),
        "replay" => replay_cmd(rest),
        other => Err(CliError(format!(
            "unknown command `{other}`\n\n{}",
            usage()
        ))),
    }
}

fn discover(flags: HashMap<String, String>) -> Result<String, CliError> {
    let topology = flags
        .get("topology")
        .map(String::as_str)
        .unwrap_or("random:n=64,extra=128");
    let variant = spec::parse_variant(flags.get("variant").map(String::as_str).unwrap_or("adhoc"))?;
    let graph = spec::parse_topology(topology)?;
    let mut sched = spec::parse_scheduler(
        flags
            .get("scheduler")
            .map(String::as_str)
            .unwrap_or("random"),
    )?;
    let trace_limit = flag_usize(&flags, "trace", 0)?;
    let want_stats = flags.contains_key("stats");

    if flags.contains_key("byzantine") || flags.contains_key("churn") {
        for incompatible in [
            "faults", "sweep", "shards", "trace", "stats", "dot", "max-steps", "jobs",
        ] {
            if flags.contains_key(incompatible) {
                return Err(CliError(format!(
                    "--byzantine/--churn run the bare protocol and report guarantee \
                     survival: drop --{incompatible}"
                )));
            }
        }
        let byz = flags
            .get("byzantine")
            .map(|s| spec::parse_byzantine(s))
            .transpose()?;
        let churn = flags.get("churn").map(|s| spec::parse_churn(s)).transpose()?;
        return discover_byzantine(
            &flags,
            topology,
            variant,
            &graph,
            byz.as_ref(),
            churn.as_ref(),
            sched,
        );
    }

    if flags.contains_key("sweep") {
        if trace_limit > 0
            || want_stats
            || flags.contains_key("dot")
            || flags.contains_key("faults")
            || flags.contains_key("record")
            || flags.contains_key("shards")
            || flags.contains_key("max-steps")
        {
            return Err(CliError(
                "--sweep runs summary trials only: drop --trace/--stats/--dot/--faults/--record/--shards/--max-steps"
                    .into(),
            ));
        }
        return discover_sweep(&flags, topology, variant, &graph);
    }
    if flags.contains_key("jobs") {
        return Err(CliError("--jobs needs --sweep".into()));
    }
    let shards = flag_usize(&flags, "shards", 0)?;
    if flags.contains_key("shards") {
        if flags.get("scheduler").map(String::as_str) != Some("fifo") {
            return Err(CliError("--shards needs --scheduler fifo".into()));
        }
        if shards == 0 {
            return Err(CliError("--shards must be ≥ 1".into()));
        }
        if flags.contains_key("faults") {
            return Err(CliError(
                "--shards runs a fault-free network: drop --faults".into(),
            ));
        }
    }

    if let Some(fault_spec) = flags.get("faults") {
        if trace_limit > 0 || want_stats || flags.contains_key("dot") {
            return Err(CliError(
                "--trace/--stats/--dot are not supported together with --faults".into(),
            ));
        }
        let plan = spec::parse_faults(fault_spec, graph.len())?;
        return discover_faulty(&flags, topology, variant, &graph, &plan, sched);
    }
    if flags.contains_key("record") {
        return Err(CliError("--record needs --faults".into()));
    }

    let mut d = Discovery::new(&graph, variant);
    if trace_limit > 0 || want_stats {
        d.runner_mut().enable_trace();
    }
    let budget = match flags.get("max-steps") {
        Some(v) => v
            .parse::<u64>()
            .map_err(|_| CliError(format!("--max-steps: `{v}` is not a number")))?,
        None => d.default_step_budget(),
    };
    let result = if shards > 0 {
        d.run_all_sharded_capped(shards, budget)
    } else {
        d.enqueue_wake_all(sched.as_mut());
        let steps = d.runner_mut().run(sched.as_mut(), budget);
        steps.map(|steps| {
            let mut outcome = d.outcome();
            outcome.steps = steps;
            outcome
        })
    };
    let outcome = result.map_err(|e| CliError(format!("simulation failed: {e}")))?;
    d.check_requirements(&graph)
        .map_err(|e| CliError(format!("requirements violated: {e}")))?;

    let mut out = String::new();
    writeln!(
        out,
        "topology  : {topology} ({} nodes, {} edges)",
        graph.len(),
        graph.edge_count()
    )
    .unwrap();
    writeln!(out, "variant   : {variant}").unwrap();
    writeln!(out, "leaders   : {:?}", outcome.leaders).unwrap();
    writeln!(out, "steps     : {}", outcome.steps).unwrap();
    writeln!(out, "requirements: satisfied").unwrap();
    write!(out, "{}", outcome.metrics).unwrap();
    if trace_limit > 0 {
        writeln!(out, "trace:").unwrap();
        write!(
            out,
            "{}",
            d.runner().trace().expect("enabled").render(trace_limit)
        )
        .unwrap();
    }
    if want_stats {
        let stats = d.runner().trace().expect("enabled").stats();
        writeln!(out, "traffic hot spots:").unwrap();
        for (node, count) in stats.top_senders(5) {
            writeln!(out, "  {node:<6} sent {count} messages").unwrap();
        }
        if let Some(((src, dst), count)) = stats.busiest_link() {
            writeln!(out, "  busiest link: {src} → {dst} ({count} messages)").unwrap();
        }
    }
    if let Some(path) = flags.get("dot") {
        std::fs::write(path, d.to_dot())
            .map_err(|e| CliError(format!("cannot write {path}: {e}")))?;
        writeln!(out, "dot       : written to {path}").unwrap();
    }
    Ok(out)
}

/// Runs `discover` under a fault plan: lossy/duplicating links plus
/// crash/restart churn, every node wrapped in the reliable-delivery layer.
/// The recorded schedule (faults included as explicit choices) can be
/// written out with `--record` and re-executed with `ard replay`.
fn discover_faulty(
    flags: &HashMap<String, String>,
    topology: &str,
    variant: Variant,
    graph: &ard_graph::KnowledgeGraph,
    plan: &FaultPlan,
    sched: Box<dyn Scheduler>,
) -> Result<String, CliError> {
    let (result, mut schedule) = Discovery::run_faulty(graph, variant, plan, sched);
    schedule.set_meta("topology", topology.to_string());
    if let Some(path) = flags.get("record") {
        std::fs::write(path, schedule.to_text())
            .map_err(|e| CliError(format!("cannot write {path}: {e}")))?;
    }
    let outcome = result.map_err(|e| CliError(format!("faulty run failed: {e}")))?;
    budgets::check_all_faulty(
        &outcome.metrics,
        graph.len() as u64,
        graph.edge_count() as u64,
        variant,
    )
    .map_err(|e| CliError(format!("faulty budgets violated: {e}")))?;

    let mut out = String::new();
    writeln!(
        out,
        "topology  : {topology} ({} nodes, {} edges)",
        graph.len(),
        graph.edge_count()
    )
    .unwrap();
    writeln!(out, "variant   : {variant}").unwrap();
    writeln!(
        out,
        "faults    : {}",
        schedule.meta("faults").unwrap_or("(vacuous)")
    )
    .unwrap();
    writeln!(out, "leaders   : {:?}", outcome.leaders).unwrap();
    writeln!(out, "steps     : {}", outcome.steps).unwrap();
    let f = &outcome.faults;
    writeln!(
        out,
        "injected  : {} drops, {} duplicates, {} crashes, {} restarts",
        f.drops, f.duplicates, f.crashes, f.restarts
    )
    .unwrap();
    writeln!(
        out,
        "recovery  : {} retransmits, {} acks, {} timer ticks",
        outcome.retransmits, outcome.acks, f.ticks
    )
    .unwrap();
    writeln!(out, "requirements: satisfied (budgets checked net of overhead)").unwrap();
    write!(out, "{}", outcome.metrics).unwrap();
    if let Some(path) = flags.get("record") {
        writeln!(
            out,
            "schedule  : written to {path} (re-run with `ard replay {path}`)"
        )
        .unwrap();
    }
    Ok(out)
}

/// Renders a guarantee verdict: `survives` or the failure it degraded to.
fn verdict(check: &Result<(), String>) -> String {
    match check {
        Ok(()) => "survives".to_string(),
        Err(reason) => format!("FAILS: {reason}"),
    }
}

/// Runs `discover` under a Byzantine and/or churn plan: the bare protocol
/// (no reliable-delivery wrapper — reliability cannot defend forged
/// content) with forgeries, selective silence, stale restarts and
/// join/leave churn injected by the scheduler. Unlike the honest and
/// faulty paths, guarantee violations are *reported*, not asserted: the
/// output says which of the paper's requirements survive this adversary.
fn discover_byzantine(
    flags: &HashMap<String, String>,
    topology: &str,
    variant: Variant,
    graph: &ard_graph::KnowledgeGraph,
    byz: Option<&ByzantinePlan>,
    churn: Option<&ChurnPlan>,
    sched: Box<dyn Scheduler>,
) -> Result<String, CliError> {
    let (result, mut schedule) = Discovery::run_byzantine(graph, variant, byz, churn, sched);
    schedule.set_meta("topology", topology.to_string());
    if let Some(path) = flags.get("record") {
        std::fs::write(path, schedule.to_text())
            .map_err(|e| CliError(format!("cannot write {path}: {e}")))?;
    }
    let outcome = result.map_err(|e| CliError(format!("byzantine run failed: {e}")))?;

    let mut out = String::new();
    writeln!(
        out,
        "topology  : {topology} ({} nodes, {} edges)",
        graph.len(),
        graph.edge_count()
    )
    .unwrap();
    writeln!(out, "variant   : {variant}").unwrap();
    writeln!(
        out,
        "byzantine : {}",
        schedule.meta("byzantine").unwrap_or("(none)")
    )
    .unwrap();
    writeln!(out, "churn     : {}", schedule.meta("churn").unwrap_or("(none)")).unwrap();
    if !outcome.byzantine_nodes.is_empty() {
        writeln!(out, "traitors  : {:?}", outcome.byzantine_nodes).unwrap();
    }
    if !outcome.joined.is_empty() || !outcome.left.is_empty() {
        writeln!(
            out,
            "membership: {:?} joined, {:?} left",
            outcome.joined, outcome.left
        )
        .unwrap();
    }
    writeln!(out, "leaders   : {:?}", outcome.leaders).unwrap();
    writeln!(out, "steps     : {}", outcome.steps).unwrap();
    let b = &outcome.byzantine;
    writeln!(
        out,
        "injected  : {} forgeries ({} no-op), {} silenced sends, {} stale restarts",
        b.forged, b.forge_noops, b.silenced, b.stale_restarts
    )
    .unwrap();
    writeln!(
        out,
        "churned   : {} joins, {} leaves, {} events discarded after leave",
        b.joins, b.leaves, b.leave_discards
    )
    .unwrap();
    writeln!(out, "single leader   : {}", verdict(&outcome.single_leader)).unwrap();
    writeln!(out, "leader knows all: {}", verdict(&outcome.leader_knows_all)).unwrap();
    writeln!(out, "budget lemmas   : {}", verdict(&outcome.budgets)).unwrap();
    write!(out, "{}", outcome.metrics).unwrap();
    if let Some(path) = flags.get("record") {
        writeln!(
            out,
            "schedule  : written to {path} (re-run with `ard replay {path}`)"
        )
        .unwrap();
    }
    Ok(out)
}

/// Runs `--sweep T` independent discovery trials over consecutive scheduler
/// seeds, one summary line each. Trials execute on `--jobs` worker threads
/// but are merged back in seed order, so the report is byte-identical at
/// any job count.
fn discover_sweep(
    flags: &HashMap<String, String>,
    topology: &str,
    variant: Variant,
    graph: &ard_graph::KnowledgeGraph,
) -> Result<String, CliError> {
    let trials = flag_usize(flags, "sweep", 0)?;
    let jobs = flag_usize(flags, "jobs", 1)?;
    if trials == 0 {
        return Err(CliError("--sweep must be ≥ 1".into()));
    }
    if jobs == 0 {
        return Err(CliError("--jobs must be ≥ 1".into()));
    }
    let sched_spec = flags
        .get("scheduler")
        .map(String::as_str)
        .unwrap_or("random");
    let base = match sched_spec.strip_prefix("random") {
        Some("") => 0,
        Some(rest) => rest
            .strip_prefix(':')
            .and_then(|v| v.parse::<u64>().ok())
            .ok_or_else(|| {
                CliError(format!("--sweep: bad scheduler seed in `{sched_spec}`"))
            })?,
        None => {
            return Err(CliError(
                "--sweep varies the seed, so it needs --scheduler random[:SEED]".into(),
            ))
        }
    };

    let seeds: Vec<u64> = (0..trials as u64).map(|i| base.wrapping_add(i)).collect();
    let lines = ard_netsim::par::parallel_map(jobs, seeds, |seed| -> Result<String, CliError> {
        let mut d = Discovery::new(graph, variant);
        let outcome = d
            .run_all(&mut RandomScheduler::seeded(seed))
            .map_err(|e| CliError(format!("seed {seed}: simulation failed: {e}")))?;
        d.check_requirements(graph)
            .map_err(|e| CliError(format!("seed {seed}: requirements violated: {e}")))?;
        Ok(format!(
            "seed {seed:>4}: leaders {:?}, {} steps, {} msgs, {} bits",
            outcome.leaders,
            outcome.steps,
            outcome.metrics.total_messages(),
            outcome.metrics.total_bits()
        ))
    });

    let mut out = String::new();
    writeln!(
        out,
        "topology  : {topology} ({} nodes, {} edges)",
        graph.len(),
        graph.edge_count()
    )
    .unwrap();
    writeln!(out, "variant   : {variant}").unwrap();
    writeln!(out, "sweep     : {trials} trials, scheduler seeds {base}..={}", base.wrapping_add(trials as u64 - 1)).unwrap();
    for line in lines {
        writeln!(out, "  {}", line?).unwrap();
    }
    writeln!(out, "requirements: satisfied in every trial").unwrap();
    Ok(out)
}

fn adversary(flags: HashMap<String, String>) -> Result<String, CliError> {
    let levels = flag_usize(&flags, "levels", 8)? as u32;
    if !(2..=16).contains(&levels) {
        return Err(CliError("--levels must be in 2..=16".into()));
    }
    let r = tree_adversary::run(levels);
    Ok(format!(
        "T({levels}): n = {}\nforced messages : {}\nTheorem 1 bound : {}\nratio           : {:.2}\n",
        r.n,
        r.messages,
        r.bound,
        r.messages as f64 / r.bound as f64
    ))
}

fn reduction(flags: HashMap<String, String>) -> Result<String, CliError> {
    let sets = flag_usize(&flags, "sets", 64)?;
    let finds = flag_usize(&flags, "finds", 32)?;
    let seed = flag_u64(&flags, "seed", 0)?;
    if sets == 0 {
        return Err(CliError("--sets must be ≥ 1".into()));
    }
    let seq = if flags.contains_key("adversarial") {
        OpSequence::adversarial_deep(sets, finds)
    } else {
        OpSequence::random(sets, finds, seed)
    };
    let out = uf_reduction::run(&seq);
    Ok(format!(
        "union-find reduction: {} sets, {} unions, {} finds\nnetwork size N : {}\nmessages       : {}\nN·α(N,N)       : {}\nmsgs/N         : {:.2}\n",
        seq.n(),
        seq.union_count(),
        seq.find_count(),
        out.network_size,
        out.messages,
        out.n_alpha,
        out.messages as f64 / out.network_size as f64
    ))
}

fn overlay(flags: HashMap<String, String>) -> Result<String, CliError> {
    let n = flag_usize(&flags, "n", 64)?;
    let lookups = flag_usize(&flags, "lookups", 100)?;
    let seed = flag_u64(&flags, "seed", 0)?;
    if n == 0 {
        return Err(CliError("--n must be ≥ 1".into()));
    }
    let graph = ard_graph::gen::random_weakly_connected(n, 2 * n, seed);
    let mut d = Discovery::new(&graph, Variant::AdHoc);
    let mut sched = RandomScheduler::seeded(seed + 1);
    let outcome = d.run_all(&mut sched).map_err(|e| CliError(e.to_string()))?;
    let leader = outcome.leaders[0];
    let members: Vec<NodeId> = d.runner().node(leader).done().iter().copied().collect();
    let mut ring = bootstrap(&members);
    let mut rng = StdRng::seed_from_u64(seed + 2);
    let mut hops = 0u64;
    let mut worst = 0u32;
    for _ in 0..lookups {
        let key = Key::new(rng.gen());
        let from = members[rng.gen_range(0..members.len())];
        let r = ring
            .lookup_blocking(from, key, &mut sched)
            .map_err(|e| CliError(e.to_string()))?;
        hops += u64::from(r.hops);
        worst = worst.max(r.hops);
    }
    Ok(format!(
        "discovery : {} members in {} messages\noverlay   : {} lookups, avg {:.2} hops, worst {worst} (log2 n = {:.1})\ntraffic   : {} messages / {} bits\n",
        members.len(),
        outcome.metrics.total_messages(),
        lookups,
        hops as f64 / lookups.max(1) as f64,
        (n as f64).log2(),
        ring.runner().metrics().total_messages(),
        ring.runner().metrics().total_bits()
    ))
}

fn baselines(flags: HashMap<String, String>) -> Result<String, CliError> {
    let n = flag_usize(&flags, "n", 64)?;
    let seed = flag_u64(&flags, "seed", 0)?;
    let seeds = flag_usize(&flags, "seeds", 1)?;
    let jobs = flag_usize(&flags, "jobs", 1)?;
    if seeds == 0 {
        return Err(CliError("--seeds must be ≥ 1".into()));
    }
    if jobs == 0 {
        return Err(CliError("--jobs must be ≥ 1".into()));
    }
    // Each trial owns its graph seed and its seeded schedulers (base seed,
    // +1, +2 internally — hence the stride of 3), so trials parallelize
    // freely; merging reports in seed order makes the output independent of
    // the job count.
    let trial_seeds: Vec<u64> = (0..seeds as u64).map(|i| seed + 3 * i).collect();
    let reports = ard_bench::parallel::parallel_map(jobs, trial_seeds, |s| baseline_trial(n, s));
    if seeds == 1 {
        return reports.into_iter().next().unwrap();
    }
    let mut out = String::new();
    for (i, report) in reports.into_iter().enumerate() {
        writeln!(out, "=== trial {} (seed {}) ===", i + 1, seed + 3 * i as u64).unwrap();
        out.push_str(&report?);
    }
    Ok(out)
}

fn baseline_trial(n: usize, seed: u64) -> Result<String, CliError> {
    let graph = ard_graph::gen::random_weakly_connected(n, 2 * n, seed);
    let mut out = String::new();
    writeln!(
        out,
        "random graph: {} nodes, {} edges",
        graph.len(),
        graph.edge_count()
    )
    .unwrap();
    for variant in [Variant::Oblivious, Variant::Bounded, Variant::AdHoc] {
        let mut d = Discovery::new(&graph, variant);
        let o = d
            .run_all(&mut RandomScheduler::seeded(seed + 1))
            .map_err(|e| CliError(e.to_string()))?;
        writeln!(
            out,
            "{:<28} {:>9} msgs {:>12} bits",
            format!("abraham-dolev {variant}"),
            o.metrics.total_messages(),
            o.metrics.total_bits()
        )
        .unwrap();
    }
    let nd = ard_baselines::name_dropper::run(&graph, seed);
    writeln!(
        out,
        "{:<28} {:>9} msgs {:>12} bits",
        "name-dropper",
        nd.metrics().total_messages(),
        nd.metrics().total_bits()
    )
    .unwrap();
    let ls = ard_baselines::law_siu::run(&graph, seed);
    writeln!(
        out,
        "{:<28} {:>9} msgs {:>12} bits",
        "law-siu push-pull",
        ls.metrics().total_messages(),
        ls.metrics().total_bits()
    )
    .unwrap();
    if n <= 192 {
        let mut sched = RandomScheduler::seeded(seed + 2);
        let (fl, _) = ard_baselines::flood::run(&graph, &mut sched, 100_000_000)
            .map_err(|e| CliError(e.to_string()))?;
        writeln!(
            out,
            "{:<28} {:>9} msgs {:>12} bits",
            "flooding",
            fl.metrics().total_messages(),
            fl.metrics().total_bits()
        )
        .unwrap();
    } else {
        writeln!(
            out,
            "{:<28} (skipped: infeasible above ~192 nodes)",
            "flooding"
        )
        .unwrap();
    }
    let alpha_nn = alpha(n as u64, n as u64);
    writeln!(out, "(α(n,n) = {alpha_nn})").unwrap();
    Ok(out)
}

/// The system an `explore`/`replay` invocation drives: the discovery
/// protocol proper (bare, or reliable-wrapped for faulty runs), or one of
/// the planted-bug demo fixtures.
enum System {
    Discovery {
        topology: String,
        variant: Variant,
        /// Wrap every node in the reliable-delivery layer and tolerate
        /// injected faults (set when `--faults` is given, or when a replayed
        /// schedule carries `faults` metadata).
        faulty: bool,
        /// Run the Byzantine-tolerant bare protocol and check the
        /// survivor-restricted guarantees instead of the honest ones (set
        /// when `--byzantine`/`--churn` is given, or when a replayed
        /// schedule carries the matching metadata).
        byzantine: Option<ByzantinePlan>,
        /// Join/leave churn: the plan's joiners get no initial wake-up —
        /// their recorded `Join` choices wake them instead.
        churn: Option<ChurnPlan>,
    },
    Racy {
        clients: usize,
    },
    Fragile {
        clients: usize,
    },
    Equiv {
        candidates: usize,
    },
}

impl System {
    /// Reconstructs the system a schedule file was recorded against, from
    /// its metadata.
    fn from_schedule(schedule: &Schedule) -> Result<Self, CliError> {
        if let Some(spec) = schedule.meta("system") {
            return Self::parse_fixture(spec);
        }
        let topology = schedule
            .meta("topology")
            .ok_or_else(|| CliError("schedule has neither `system` nor `topology` meta".into()))?;
        let variant = spec::parse_variant(
            schedule
                .meta("variant")
                .ok_or_else(|| CliError("schedule has no `variant` meta".into()))?,
        )?;
        let byzantine = match schedule.meta("byzantine") {
            Some(meta) => Some(spec::parse_byzantine(meta)?),
            None => None,
        };
        let churn = match schedule.meta("churn") {
            Some(meta) => Some(spec::parse_churn(meta)?),
            None => None,
        };
        Ok(System::Discovery {
            topology: topology.to_string(),
            variant,
            faulty: schedule.meta("faults").is_some(),
            byzantine,
            churn,
        })
    }

    fn parse_fixture(spec: &str) -> Result<Self, CliError> {
        let (kind, clients) = spec.split_once(':').ok_or_else(|| {
            CliError(format!(
                "unknown system `{spec}` (try discovery, racy:K, fragile:K, equiv:K)"
            ))
        })?;
        let clients = clients
            .parse::<usize>()
            .map_err(|_| CliError(format!("{kind}: `{clients}` is not a client count")))?;
        if clients == 0 {
            return Err(CliError(format!("{kind} needs at least one client")));
        }
        match kind {
            "racy" => Ok(System::Racy { clients }),
            "fragile" => Ok(System::Fragile { clients }),
            "equiv" => {
                if clients < 2 {
                    return Err(CliError(
                        "equiv needs at least two candidates (a second leader needs a second candidate)".into(),
                    ));
                }
                Ok(System::Equiv { candidates: clients })
            }
            other => Err(CliError(format!(
                "unknown system `{other}` (try discovery, racy:K, fragile:K, equiv:K)"
            ))),
        }
    }

    /// Number of nodes in the system — the domain crash events draw from.
    fn node_count(&self) -> Result<usize, CliError> {
        match self {
            System::Discovery { topology, .. } => Ok(spec::parse_topology(topology)?.len()),
            // The fixtures are one hub/coordinator/voter plus K clients.
            System::Racy { clients } | System::Fragile { clients } => Ok(clients + 1),
            System::Equiv { candidates } => Ok(candidates + 1),
        }
    }

    /// Stamps the metadata replay needs to rebuild this system.
    fn stamp(&self, schedule: &mut Schedule) {
        match self {
            System::Discovery {
                topology,
                variant,
                byzantine,
                churn,
                ..
            } => {
                schedule.set_meta("topology", topology.clone());
                schedule.set_meta("variant", variant.to_string());
                if let Some(plan) = byzantine {
                    schedule.set_meta("byzantine", byzantine_meta(plan));
                }
                if let Some(plan) = churn {
                    schedule.set_meta("churn", churn_meta(plan));
                }
            }
            System::Racy { clients } => {
                schedule.set_meta("system", format!("racy:{clients}"));
            }
            System::Fragile { clients } => {
                schedule.set_meta("system", format!("fragile:{clients}"));
            }
            System::Equiv { candidates } => {
                schedule.set_meta("system", format!("equiv:{candidates}"));
            }
        }
    }

    /// The property closure shared by explore, shrink and replay: build the
    /// system from scratch, run it under `sched`, return `Err` on any
    /// violation. Fault choices, if any, come from the scheduler (a
    /// fault-wrapped explorer or a replayed schedule), never from here.
    fn run_one(&self, sched: &mut dyn Scheduler) -> Result<(), String> {
        match self {
            System::Discovery {
                topology,
                variant,
                faulty,
                byzantine,
                churn,
            } => {
                let graph = spec::parse_topology(topology).map_err(|e| e.to_string())?;
                if byzantine.is_some() || churn.is_some() {
                    // The survivor-restricted guarantees: any that fail
                    // under this schedule count as the violation.
                    let mut bd = ByzantineDiscovery::new(&graph, *variant);
                    let withheld: BTreeSet<NodeId> = churn
                        .as_ref()
                        .map(|c| c.joiners(graph.len()).into_iter().collect())
                        .unwrap_or_default();
                    let steps = bd.run_all(sched, &withheld)?;
                    let outcome = bd.outcome(steps, byzantine.as_ref(), churn.as_ref());
                    outcome.single_leader.clone()?;
                    outcome.leader_knows_all.clone()?;
                    return outcome.budgets.clone();
                }
                if *faulty {
                    let mut fd = FaultyDiscovery::new(&graph, *variant);
                    let outcome = fd.run_all(sched)?;
                    fd.check_requirements()?;
                    budgets::check_all_faulty(
                        &outcome.metrics,
                        graph.len() as u64,
                        graph.edge_count() as u64,
                        *variant,
                    )
                } else {
                    let mut d = Discovery::new(&graph, *variant);
                    let outcome = d.run_all(sched).map_err(|e| e.to_string())?;
                    d.check_requirements(&graph)?;
                    budgets::check_all(
                        &outcome.metrics,
                        graph.len() as u64,
                        graph.edge_count() as u64,
                        *variant,
                    )
                }
            }
            System::Racy { clients } => fixtures::run_racy(*clients, sched),
            System::Fragile { clients } => fixtures::run_fragile(*clients, sched),
            System::Equiv { candidates } => fixtures::run_equiv(*candidates, sched),
        }
    }

    /// Runs an exploration over this system. The fixtures go through the
    /// checkpoint/fork path (their runs are cloneable); discovery runs
    /// through the run-to-completion closure contract. Results are
    /// byte-identical either way.
    fn explore(&self, config: &ExploreConfig) -> ExploreReport {
        match self {
            System::Racy { clients } => explore_fork(config, &fixtures::RacySystem::new(*clients)),
            System::Fragile { clients } => {
                explore_fork(config, &fixtures::FragileSystem::new(*clients))
            }
            System::Equiv { candidates } => {
                explore_fork(config, &fixtures::EquivSystem::new(*candidates))
            }
            System::Discovery { .. } => {
                explore(config, || |sched: &mut dyn Scheduler| self.run_one(sched))
            }
        }
    }
}

fn explore_cmd(flags: HashMap<String, String>) -> Result<String, CliError> {
    let budget = flag_u64(&flags, "budget", 64)?;
    let walks = flag_u64(&flags, "walks", budget / 2)?;
    if walks > budget {
        return Err(CliError(format!(
            "--walks {walks} exceeds the --budget of {budget}"
        )));
    }
    let depth = flag_usize(&flags, "depth", 4)?;
    let seed = flag_u64(&flags, "seed", 0)?;
    let jobs = flag_usize(&flags, "jobs", 1)?;
    if jobs == 0 {
        return Err(CliError("--jobs must be ≥ 1".into()));
    }
    let out_path = flags
        .get("out")
        .map(String::as_str)
        .unwrap_or("ard-failure.schedule");
    let byzantine = flags
        .get("byzantine")
        .map(|s| spec::parse_byzantine(s))
        .transpose()?;
    let churn = flags.get("churn").map(|s| spec::parse_churn(s)).transpose()?;
    if (byzantine.is_some() || churn.is_some()) && flags.contains_key("faults") {
        return Err(CliError(
            "--byzantine/--churn run the bare protocol (no reliable-delivery layer), \
             which cannot absorb link faults: drop --faults"
                .into(),
        ));
    }
    let system = match flags.get("system").map(String::as_str) {
        None | Some("discovery") => {
            let topology = flags
                .get("topology")
                .map(String::as_str)
                .unwrap_or("random:n=16,extra=24");
            let variant = spec::parse_variant(
                flags.get("variant").map(String::as_str).unwrap_or("adhoc"),
            )?;
            // Parse eagerly so bad specs fail before any exploration.
            spec::parse_topology(topology)?;
            System::Discovery {
                topology: topology.to_string(),
                variant,
                faulty: flags.contains_key("faults"),
                byzantine: byzantine.clone(),
                churn: churn.clone(),
            }
        }
        Some(other) => System::parse_fixture(other)?,
    };
    let n = system.node_count()?;
    let fault = match flags.get("faults") {
        Some(fault_spec) => Some(spec::parse_faults(fault_spec, n)?),
        None => None,
    };
    let reduce = match flags.get("reduce").map(String::as_str) {
        None | Some("none") => ReduceMode::None,
        Some("sleep") => ReduceMode::Sleep,
        Some(other) => {
            return Err(CliError(format!(
                "--reduce takes `sleep` or `none`, got `{other}`"
            )))
        }
    };

    let config = ExploreConfig {
        random_walks: walks,
        dfs_budget: budget - walks,
        dfs_depth: depth,
        seed,
        fault: fault.clone(),
        byzantine: byzantine.clone().map(|plan| (plan, n)),
        churn: churn.clone().map(|plan| (plan, n)),
        jobs,
        verify_snapshots: flags.contains_key("check-snapshots"),
        reduce,
        ..ExploreConfig::default()
    };
    let report = system.explore(&config);
    let mut out = String::new();
    writeln!(
        out,
        "explored  : {} schedules ({} random walks, {} dfs, depth {depth})",
        report.runs, report.random_walks, report.dfs_runs
    )
    .unwrap();
    if let Some(plan) = &fault {
        writeln!(
            out,
            "faults    : drop={}, dup={}, crash={} (seed {})",
            plan.drop,
            plan.dup,
            plan.crashes.len(),
            plan.seed
        )
        .unwrap();
    }
    if let Some(plan) = &byzantine {
        writeln!(out, "byzantine : {}", byzantine_meta(plan)).unwrap();
    }
    if let Some(plan) = &churn {
        writeln!(out, "churn     : {}", churn_meta(plan)).unwrap();
    }
    if flags.contains_key("stats") {
        writeln!(
            out,
            "reduction : mode={reduce}, sleep-pruned={}, state-deduped={}",
            report.sleep_pruned, report.digest_deduped
        )
        .unwrap();
    }
    let Some(failure) = report.failure else {
        writeln!(out, "result    : no violation found").unwrap();
        writeln!(out, "stopped   : {}", report.stop).unwrap();
        return Ok(out);
    };
    writeln!(out, "violation : {}", failure.reason).unwrap();
    writeln!(
        out,
        "found by  : {} (run {} of the exploration)",
        failure.origin,
        failure.run_index + 1
    )
    .unwrap();
    let shrunk = shrink_jobs(&failure.schedule, jobs, || {
        |sched: &mut dyn Scheduler| system.run_one(sched)
    });
    writeln!(
        out,
        "shrunk    : {} → {} choices ({} candidate runs)",
        shrunk.original_len,
        shrunk.schedule.len(),
        shrunk.attempts
    )
    .unwrap();
    let mut schedule = shrunk.schedule;
    system.stamp(&mut schedule);
    if let (Some(spec), System::Discovery { .. }) = (flags.get("faults"), &system) {
        // Presence of the key tells replay to rebuild the reliable-wrapped
        // network; the recorded choices already carry the faults themselves.
        schedule.set_meta("faults", spec.clone());
    }
    std::fs::write(out_path, schedule.to_text())
        .map_err(|e| CliError(format!("cannot write {out_path}: {e}")))?;
    writeln!(out, "replay    : {out_path} (re-run with `ard replay {out_path}`)").unwrap();
    Ok(out)
}

fn replay_cmd(args: &[String]) -> Result<String, CliError> {
    let Some((path, rest)) = args.split_first() else {
        return Err(CliError("replay needs a schedule file: ard replay <file>".into()));
    };
    if path.starts_with("--") {
        return Err(CliError("replay needs a schedule file: ard replay <file>".into()));
    }
    let flags = parse_flags(rest)?;
    for key in flags.keys() {
        if key != "shrink" && key != "jobs" && key != "out" {
            return Err(CliError(format!("replay does not take --{key}")));
        }
    }
    let want_shrink = flags.contains_key("shrink");
    let jobs = flag_usize(&flags, "jobs", 1)?;
    if jobs == 0 {
        return Err(CliError("--jobs must be ≥ 1".into()));
    }
    if !want_shrink && (flags.contains_key("jobs") || flags.contains_key("out")) {
        return Err(CliError("--jobs/--out need --shrink".into()));
    }
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError(format!("cannot read {path}: {e}")))?;
    let schedule = Schedule::parse(&text).map_err(|e| CliError(format!("{path}: {e}")))?;
    let system = System::from_schedule(&schedule)?;

    let mut out = String::new();
    writeln!(out, "schedule  : {} choices from {path}", schedule.len()).unwrap();
    for (k, v) in schedule.meta_iter() {
        writeln!(out, "meta      : {k} = {v}").unwrap();
    }
    let mut replay = ReplayScheduler::strict(&schedule);
    let reproduced = match system.run_one(&mut replay) {
        Err(reason) => {
            writeln!(out, "result    : violation reproduced: {reason}").unwrap();
            true
        }
        Ok(()) => {
            writeln!(out, "result    : schedule replayed cleanly (no violation)").unwrap();
            false
        }
    };
    if replay.leftover() > 0 {
        writeln!(
            out,
            "note      : {} events still pending (schedule is a truncation)",
            replay.leftover()
        )
        .unwrap();
    }
    if want_shrink {
        if !reproduced {
            return Err(CliError(
                "--shrink needs a failing schedule, but the replay found no violation".into(),
            ));
        }
        let shrunk = shrink_jobs(&schedule, jobs, || {
            |sched: &mut dyn Scheduler| system.run_one(sched)
        });
        writeln!(
            out,
            "shrunk    : {} → {} choices ({} candidate runs)",
            shrunk.original_len,
            shrunk.schedule.len(),
            shrunk.attempts
        )
        .unwrap();
        let default_out = format!("{path}.min");
        let out_path = flags.get("out").map(String::as_str).unwrap_or(&default_out);
        std::fs::write(out_path, shrunk.schedule.to_text())
            .map_err(|e| CliError(format!("cannot write {out_path}: {e}")))?;
        writeln!(
            out,
            "written   : {out_path} (re-run with `ard replay {out_path}`)"
        )
        .unwrap();
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_line(line: &str) -> Result<String, CliError> {
        let args: Vec<String> = line.split_whitespace().map(String::from).collect();
        run(&args)
    }

    #[test]
    fn help_and_empty_print_usage() {
        assert!(run(&[]).unwrap().contains("usage:"));
        assert!(run_line("help").unwrap().contains("commands:"));
    }

    #[test]
    fn unknown_command_errors_with_usage() {
        let err = run_line("launch").unwrap_err();
        assert!(err.0.contains("unknown command"));
        assert!(err.0.contains("usage:"));
    }

    #[test]
    fn discover_runs_and_reports() {
        let out =
            run_line("discover --topology ring:12 --variant bounded --scheduler fifo").unwrap();
        assert!(out.contains("requirements: satisfied"));
        assert!(out.contains("leaders"));
    }

    #[test]
    fn discover_with_trace() {
        let out = run_line("discover --topology path:4 --scheduler fifo --trace 5").unwrap();
        assert!(out.contains("trace:"));
        assert!(out.contains("wake"));
    }

    #[test]
    fn discover_with_stats() {
        let out = run_line("discover --topology ring:8 --scheduler fifo --stats").unwrap();
        assert!(out.contains("traffic hot spots:"));
        assert!(out.contains("busiest link:"));
    }

    #[test]
    fn discover_shards_do_not_change_output() {
        let sequential =
            run_line("discover --topology random:n=40,extra=80 --variant adhoc --scheduler fifo --stats")
                .unwrap();
        for shards in [1, 4] {
            let sharded = run_line(&format!(
                "discover --topology random:n=40,extra=80 --variant adhoc --scheduler fifo --stats --shards {shards}"
            ))
            .unwrap();
            assert_eq!(sharded, sequential, "--shards {shards} diverged");
        }
    }

    #[test]
    fn discover_shards_need_fifo() {
        let err = run_line("discover --topology ring:8 --shards 2").unwrap_err();
        assert!(err.0.contains("--shards needs --scheduler fifo"));
        let err = run_line("discover --topology ring:8 --scheduler fifo --shards 0").unwrap_err();
        assert!(err.0.contains("--shards must be ≥ 1"));
    }

    #[test]
    fn discover_max_steps_caps_the_run() {
        let err = run_line("discover --topology ring:12 --scheduler fifo --max-steps 3").unwrap_err();
        assert!(err.0.contains("simulation failed"), "{}", err.0);
        let ok = run_line("discover --topology ring:12 --scheduler fifo --max-steps 100000").unwrap();
        assert!(ok.contains("requirements: satisfied"));
    }

    #[test]
    fn discover_rejects_bad_spec() {
        assert!(run_line("discover --topology blob:9").is_err());
        assert!(run_line("discover --variant mystery").is_err());
        assert!(run_line("discover --scheduler psychic").is_err());
    }

    #[test]
    fn adversary_reports_bound() {
        let out = run_line("adversary --levels 4").unwrap();
        assert!(out.contains("Theorem 1 bound : 30"));
        assert!(run_line("adversary --levels 1").is_err());
    }

    #[test]
    fn reduction_runs() {
        let out = run_line("reduction --sets 16 --finds 8").unwrap();
        assert!(out.contains("network size N : 39"));
        let out = run_line("reduction --sets 16 --finds 4 --adversarial").unwrap();
        assert!(out.contains("union-find reduction"));
    }

    #[test]
    fn overlay_runs() {
        let out = run_line("overlay --n 24 --lookups 10").unwrap();
        assert!(out.contains("24 members"));
        assert!(out.contains("10 lookups"));
    }

    #[test]
    fn baselines_run() {
        let out = run_line("baselines --n 24").unwrap();
        assert!(out.contains("name-dropper"));
        assert!(out.contains("law-siu"));
        assert!(out.contains("flooding"));
    }

    #[test]
    fn baselines_jobs_do_not_change_output() {
        let parallel = run_line("baselines --n 16 --seeds 3 --jobs 4").unwrap();
        let sequential = run_line("baselines --n 16 --seeds 3 --jobs 1").unwrap();
        assert_eq!(parallel, sequential);
        assert!(parallel.contains("=== trial 3 (seed 6) ==="));
        assert!(run_line("baselines --n 16 --jobs 0").is_err());
        assert!(run_line("baselines --n 16 --seeds 0").is_err());
    }

    #[test]
    fn flag_parsing_rejects_orphans() {
        assert!(run_line("discover --topology").is_err());
        assert!(run_line("discover topology ring:5").is_err());
    }

    #[test]
    fn explore_discovery_reports_no_violation() {
        let out =
            run_line("explore --topology path:6 --variant oblivious --budget 8 --depth 2").unwrap();
        assert!(out.contains("explored  : 8 schedules (4 random walks, 4 dfs"));
        assert!(out.contains("no violation found"));
    }

    #[test]
    fn explore_finds_shrinks_and_writes_a_replayable_schedule() {
        let path = std::env::temp_dir().join("ard-cli-test-racy.schedule");
        let path = path.to_str().unwrap().to_string();
        let report =
            run_line(&format!("explore --system racy:3 --budget 32 --out {path}")).unwrap();
        assert!(report.contains("violation : lease granted to highest-id client"));
        assert!(report.contains("found by  :"));
        assert!(report.contains("shrunk    :"));
        let replayed = run_line(&format!("replay {path}")).unwrap();
        assert!(replayed.contains("violation reproduced: lease granted"));
        assert!(replayed.contains("meta      : system = racy:3"));
    }

    #[test]
    fn explore_same_flags_same_stdout() {
        let line = "explore --topology ring:6 --variant adhoc --budget 6 --depth 2 --seed 7";
        assert_eq!(run_line(line).unwrap(), run_line(line).unwrap());
    }

    #[test]
    fn explore_reports_why_it_stopped() {
        let out =
            run_line("explore --topology path:6 --variant oblivious --budget 8 --depth 2").unwrap();
        assert!(
            out.contains("stopped   : frontier exhausted")
                || out.contains("stopped   : budget exhausted"),
            "{out}"
        );
    }

    #[test]
    fn explore_reduce_finds_the_same_race_and_prints_stats() {
        let path = std::env::temp_dir().join("ard-cli-test-reduce.schedule");
        let path = path.to_str().unwrap().to_string();
        let reduced = run_line(&format!(
            "explore --system racy:3 --budget 32 --depth 7 --reduce --stats --out {path}"
        ))
        .unwrap();
        assert!(reduced.contains("violation : lease granted to highest-id client"));
        assert!(reduced.contains("reduction : mode=sleep, sleep-pruned="), "{reduced}");
        let replayed = run_line(&format!("replay {path}")).unwrap();
        assert!(replayed.contains("violation reproduced: lease granted"));
        // `--reduce none` is the explicit off switch and changes nothing
        // about the default output.
        let off = run_line("explore --system racy:3 --budget 32 --depth 7 --reduce none --stats")
            .unwrap();
        assert!(off.contains("reduction : mode=none, sleep-pruned=0, state-deduped=0"), "{off}");
        assert!(run_line("explore --system racy:3 --reduce bogus").is_err());
    }

    #[test]
    fn explore_walks_controls_the_phase_split() {
        let path = std::env::temp_dir().join("ard-cli-test-walks.schedule");
        let path = path.to_str().unwrap().to_string();
        let pure_dfs = run_line(&format!(
            "explore --system racy:3 --budget 32 --walks 0 --depth 7 --out {path}"
        ))
        .unwrap();
        assert!(pure_dfs.contains("(0 random walks,"), "{pure_dfs}");
        assert!(pure_dfs.contains("violation : lease granted to highest-id client"));
        let pure_walks =
            run_line("explore --topology path:4 --variant oblivious --budget 8 --walks 8").unwrap();
        assert!(pure_walks.contains("(8 random walks, 0 dfs,"), "{pure_walks}");
        let err = run_line("explore --system racy:3 --budget 8 --walks 9").unwrap_err();
        assert!(err.0.contains("exceeds the --budget"), "{}", err.0);
    }

    #[test]
    fn replay_same_file_same_stdout() {
        let graph = spec::parse_topology("ring:8").unwrap();
        let mut d = Discovery::new(&graph, Variant::AdHoc);
        let (result, mut schedule) = d.run_recorded(RandomScheduler::seeded(3));
        result.unwrap();
        schedule.set_meta("topology", "ring:8");
        let path = std::env::temp_dir().join("ard-cli-test-ring.schedule");
        std::fs::write(&path, schedule.to_text()).unwrap();
        let line = format!("replay {}", path.display());
        let a = run_line(&line).unwrap();
        assert_eq!(a, run_line(&line).unwrap());
        assert!(a.contains("result    : schedule replayed cleanly"));
        assert!(a.contains("meta      : variant = ad-hoc"));
    }

    #[test]
    fn discover_faulty_records_a_replayable_schedule() {
        let path = std::env::temp_dir().join("ard-cli-test-faulty.schedule");
        let path = path.to_str().unwrap().to_string();
        let out = run_line(&format!(
            "discover --topology ring:10 --variant bounded --scheduler random:3 \
             --faults drop=0.1,dup=0.05,seed=5 --record {path}"
        ))
        .unwrap();
        assert!(out.contains("faults    : drop=0.1,dup=0.05,crash=0,seed=5"));
        assert!(out.contains("injected  :"));
        assert!(out.contains("requirements: satisfied"));
        let replayed = run_line(&format!("replay {path}")).unwrap();
        assert!(replayed.contains("meta      : faults = drop=0.1,dup=0.05,crash=0,seed=5"));
        assert!(replayed.contains("result    : schedule replayed cleanly"));
    }

    #[test]
    fn discover_faulty_with_crashes_still_satisfies_requirements() {
        let out = run_line(
            "discover --topology random:n=12,extra=18,seed=2 --scheduler random:7 \
             --faults drop=0.05,crash=2,seed=11",
        )
        .unwrap();
        assert!(out.contains("2 crashes, 2 restarts"));
        assert!(out.contains("requirements: satisfied"));
    }

    #[test]
    fn discover_rejects_bad_fault_flags() {
        assert!(run_line("discover --topology ring:6 --faults drop=1.5").is_err());
        assert!(run_line("discover --topology ring:6 --faults mangle=1").is_err());
        assert!(run_line("discover --topology ring:6 --record out.schedule").is_err());
        assert!(run_line("discover --topology ring:6 --faults drop=0.1 --stats").is_err());
    }

    #[test]
    fn explore_with_faults_finds_the_fragile_bug() {
        let path = std::env::temp_dir().join("ard-cli-test-fragile.schedule");
        let path = path.to_str().unwrap().to_string();
        let report = run_line(&format!(
            "explore --system fragile:1 --budget 128 --faults drop=0.25,seed=1 --out {path}"
        ))
        .unwrap();
        assert!(report.contains("faults    : drop=0.25"));
        assert!(report.contains("violation :"), "{report}");
        assert!(report.contains("shrunk    :"));
        let replayed = run_line(&format!("replay {path}")).unwrap();
        assert!(replayed.contains("meta      : system = fragile:1"));
        assert!(replayed.contains("violation reproduced"), "{replayed}");
    }

    #[test]
    fn discover_byzantine_reports_survival_and_records_a_replayable_schedule() {
        let path = std::env::temp_dir().join("ard-cli-test-byzantine.schedule");
        let path = path.to_str().unwrap().to_string();
        let line = format!(
            "discover --topology ring:12 --scheduler random:5 \
             --byzantine f=2,seed=7 --churn rate=0.2,seed=11 --record {path}"
        );
        let out = run_line(&line).unwrap();
        assert!(out.contains("byzantine : f=2,seed=7,classes=equivocate+fabricate+silence+stale-restart"));
        assert!(out.contains("churn     : rate=0.2,seed=11"));
        assert!(out.contains("traitors  : [n1, n5]"));
        assert!(out.contains("single leader   :"), "{out}");
        assert!(out.contains("leader knows all:"), "{out}");
        assert!(out.contains("budget lemmas   :"), "{out}");
        assert_eq!(run_line(&line).unwrap(), out, "byzantine discover must be deterministic");
        let replayed = run_line(&format!("replay {path}")).unwrap();
        assert!(replayed.contains("meta      : byzantine = f=2,seed=7,classes="));
        assert!(replayed.contains("meta      : churn = rate=0.2,seed=11"));
    }

    #[test]
    fn discover_byzantine_survives_on_a_quiet_seed() {
        // Only silence injected, no churn: the bare protocol rides it out.
        let out = run_line(
            "discover --topology ring:8 --scheduler random:2 --byzantine f=1,seed=4,class=silence",
        )
        .unwrap();
        assert!(out.contains("byzantine : f=1,seed=4,classes=silence"));
        assert!(out.contains("single leader   : survives"), "{out}");
    }

    #[test]
    fn explore_equiv_finds_and_shrinks_the_equivocation() {
        let path = std::env::temp_dir().join("ard-cli-test-equiv.schedule");
        let path = path.to_str().unwrap().to_string();
        let report = run_line(&format!(
            "explore --system equiv:3 --byzantine f=1,seed=3,class=equivocate --budget 64 --out {path}"
        ))
        .unwrap();
        assert!(report.contains("byzantine : f=1,seed=3,classes=equivocate"));
        assert!(report.contains("violation : forged endorsements elected 2 leaders"), "{report}");
        assert!(report.contains("shrunk    :"));
        let replayed = run_line(&format!("replay {path}")).unwrap();
        assert!(replayed.contains("meta      : system = equiv:3"));
        assert!(replayed.contains("violation reproduced: forged endorsements elected 2 leaders"));
    }

    #[test]
    fn equiv_is_clean_without_a_byzantine_plan() {
        let out = run_line("explore --system equiv:3 --budget 32").unwrap();
        assert!(out.contains("no violation found"), "{out}");
    }

    #[test]
    fn byzantine_flags_reject_bad_combinations() {
        // Byzantine runs use the bare protocol; link faults need Reliable.
        assert!(run_line("discover --topology ring:6 --byzantine f=1 --faults drop=0.1").is_err());
        assert!(run_line("explore --system equiv:2 --byzantine f=1 --faults drop=0.1").is_err());
        assert!(run_line("discover --topology ring:6 --byzantine f=1 --stats").is_err());
        assert!(run_line("discover --topology ring:6 --byzantine f=1 --sweep 3").is_err());
        assert!(run_line("discover --topology ring:6 --byzantine f=1 --trace 5").is_err());
        // Bad specs fail loudly.
        assert!(run_line("discover --topology ring:6 --byzantine seed=3").is_err());
        assert!(run_line("discover --topology ring:6 --byzantine f=1,class=bribe").is_err());
        assert!(run_line("discover --topology ring:6 --churn rate=0.9").is_err());
        assert!(run_line("explore --system equiv:1").is_err());
    }

    #[test]
    fn explore_jobs_do_not_change_output() {
        let path = std::env::temp_dir().join("ard-cli-test-parallel.schedule");
        let path = path.to_str().unwrap().to_string();
        let line = |jobs: usize| {
            format!("explore --system racy:3 --budget 32 --jobs {jobs} --out {path}")
        };
        let sequential = run_line(&line(1)).unwrap();
        for jobs in [2, 4] {
            assert_eq!(run_line(&line(jobs)).unwrap(), sequential, "jobs={jobs}");
        }
        assert!(!sequential.contains("jobs"), "job count must not leak into output");
        assert!(run_line("explore --system racy:2 --jobs 0").is_err());
    }

    #[test]
    fn explore_check_snapshots_output_is_unchanged() {
        let path = std::env::temp_dir().join("ard-cli-test-snap.schedule");
        let path = path.to_str().unwrap().to_string();
        let plain =
            run_line(&format!("explore --system racy:2 --budget 48 --depth 5 --out {path}"))
                .unwrap();
        let checked = run_line(&format!(
            "explore --system racy:2 --budget 48 --depth 5 --check-snapshots --jobs 2 --out {path}"
        ))
        .unwrap();
        assert_eq!(plain, checked);
    }

    #[test]
    fn replay_shrink_minimizes_and_writes() {
        use ard_netsim::explore::{explore, ExploreConfig};
        // An *unshrunk* failing schedule, as the explorer first found it.
        let report = explore(&ExploreConfig::default(), || {
            |s: &mut dyn Scheduler| fixtures::run_racy(3, s)
        });
        let mut schedule = report.failure.expect("explorer finds the race").schedule;
        schedule.set_meta("system", "racy:3");
        let path = std::env::temp_dir().join("ard-cli-test-replay-shrink.schedule");
        std::fs::write(&path, schedule.to_text()).unwrap();
        let path = path.to_str().unwrap().to_string();

        let sequential = run_line(&format!("replay {path} --shrink")).unwrap();
        assert!(sequential.contains("violation reproduced"));
        assert!(sequential.contains("shrunk    :"));
        assert!(sequential.contains("written   :"));
        assert_eq!(run_line(&format!("replay {path} --shrink --jobs 4 --out {path}.min")).unwrap(), sequential);
        let replayed = run_line(&format!("replay {path}.min")).unwrap();
        assert!(replayed.contains("violation reproduced"));
        assert!(replayed.contains("meta      : shrunk-from ="));

        // Flag hygiene: --jobs/--out without --shrink, unknown flags, and
        // shrinking a passing schedule are all loud errors.
        assert!(run_line(&format!("replay {path} --jobs 2")).is_err());
        assert!(run_line(&format!("replay {path} --turbo 9")).is_err());
    }

    #[test]
    fn replay_shrink_rejects_a_passing_schedule() {
        let graph = spec::parse_topology("ring:6").unwrap();
        let mut d = Discovery::new(&graph, Variant::AdHoc);
        let (result, mut schedule) = d.run_recorded(RandomScheduler::seeded(2));
        result.unwrap();
        schedule.set_meta("topology", "ring:6");
        let path = std::env::temp_dir().join("ard-cli-test-clean-shrink.schedule");
        std::fs::write(&path, schedule.to_text()).unwrap();
        let err = run_line(&format!("replay {} --shrink", path.display())).unwrap_err();
        assert!(err.0.contains("no violation"));
    }

    #[test]
    fn discover_sweep_jobs_do_not_change_output() {
        let line = |jobs: usize| {
            format!("discover --topology ring:10 --scheduler random:5 --sweep 3 --jobs {jobs}")
        };
        let sequential = run_line(&line(1)).unwrap();
        assert!(sequential.contains("sweep     : 3 trials, scheduler seeds 5..=7"));
        assert!(sequential.contains("requirements: satisfied in every trial"));
        for jobs in [2, 4] {
            assert_eq!(run_line(&line(jobs)).unwrap(), sequential, "jobs={jobs}");
        }
        assert!(run_line("discover --topology ring:6 --sweep 2 --stats").is_err());
        assert!(run_line("discover --topology ring:6 --jobs 2").is_err());
        assert!(run_line("discover --topology ring:6 --scheduler fifo --sweep 2").is_err());
        assert!(run_line("discover --topology ring:6 --sweep 0").is_err());
    }

    #[test]
    fn explore_and_replay_reject_bad_input() {
        assert!(run_line("explore --system racy:0").is_err());
        assert!(run_line("explore --system warp").is_err());
        assert!(run_line("explore --topology blob:5").is_err());
        assert!(run_line("replay").is_err());
        assert!(run_line("replay --flag").is_err());
        assert!(run_line("replay /nonexistent/ard.schedule").is_err());
    }
}
