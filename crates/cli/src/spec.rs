//! Textual specifications for topologies, schedulers and variants.
//!
//! Grammar (all case-insensitive):
//!
//! ```text
//! topology  := path:N | ring:N | star-in:N | star-out:N | complete:N
//!            | tree:LEVELS | random:n=N,extra=M[,seed=S]
//!            | components:count=C,per=P[,extra=M][,seed=S]
//! scheduler := fifo | lifo | random[:SEED] | bounded:DELAY[,SEED]
//! variant   := oblivious | bounded | adhoc
//! faults    := drop=P | dup=P | crash=N | seed=S   (comma-separated)
//! byzantine := f=K | seed=S | class=C | classes=C+C+…   (comma-separated;
//!              C ∈ equivocate, fabricate, silence, stale-restart, all)
//! churn     := rate=R | seed=S   (comma-separated, 0 ≤ R ≤ 0.5)
//! ```

use ard_core::Variant;
use ard_graph::{gen, KnowledgeGraph};
use ard_netsim::{
    BoundedDelayScheduler, ByzantinePlan, ChurnPlan, FaultPlan, FifoScheduler, LifoScheduler,
    RandomScheduler, Scheduler,
};

/// A parse failure, with a human-oriented message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSpecError(pub String);

impl std::fmt::Display for ParseSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid specification: {}", self.0)
    }
}

impl std::error::Error for ParseSpecError {}

fn err(msg: impl Into<String>) -> ParseSpecError {
    ParseSpecError(msg.into())
}

fn parse_usize(s: &str, what: &str) -> Result<usize, ParseSpecError> {
    s.parse()
        .map_err(|_| err(format!("{what}: `{s}` is not a number")))
}

fn parse_u64(s: &str, what: &str) -> Result<u64, ParseSpecError> {
    s.parse()
        .map_err(|_| err(format!("{what}: `{s}` is not a number")))
}

/// Parses `key=value,key=value` into pairs.
fn parse_kv(s: &str) -> Result<Vec<(&str, &str)>, ParseSpecError> {
    s.split(',')
        .filter(|part| !part.is_empty())
        .map(|part| {
            part.split_once('=')
                .ok_or_else(|| err(format!("expected key=value, got `{part}`")))
        })
        .collect()
}

/// Parses a topology specification into a knowledge graph.
///
/// # Errors
///
/// Returns [`ParseSpecError`] with the offending fragment.
///
/// # Example
///
/// ```
/// let g = ard_cli::spec::parse_topology("random:n=32,extra=64,seed=5").unwrap();
/// assert_eq!(g.len(), 32);
/// assert!(ard_cli::spec::parse_topology("blob:77").is_err());
/// ```
pub fn parse_topology(spec: &str) -> Result<KnowledgeGraph, ParseSpecError> {
    let (kind, rest) = spec.split_once(':').unwrap_or((spec, ""));
    match kind.to_ascii_lowercase().as_str() {
        "path" => Ok(gen::path(parse_usize(rest, "path size")?)),
        "ring" => Ok(gen::ring(parse_usize(rest, "ring size")?)),
        "star-in" => Ok(gen::star_in(parse_usize(rest, "star size")?)),
        "star-out" => Ok(gen::star_out(parse_usize(rest, "star size")?)),
        "complete" => Ok(gen::complete(parse_usize(rest, "clique size")?)),
        "tree" => {
            let levels = parse_usize(rest, "tree levels")?;
            if levels == 0 || levels > 24 {
                return Err(err("tree levels must be in 1..=24"));
            }
            Ok(gen::binary_tree_down(levels as u32))
        }
        "random" => {
            let mut n = None;
            let mut extra = 0;
            let mut seed = 0;
            for (k, v) in parse_kv(rest)? {
                match k {
                    "n" => n = Some(parse_usize(v, "n")?),
                    "extra" => extra = parse_usize(v, "extra")?,
                    "seed" => seed = parse_u64(v, "seed")?,
                    other => return Err(err(format!("unknown random-graph key `{other}`"))),
                }
            }
            let n = n.ok_or_else(|| err("random needs n=<size>"))?;
            Ok(gen::random_weakly_connected(n, extra, seed))
        }
        "components" => {
            let (mut count, mut per, mut extra, mut seed) = (None, None, 0, 0);
            for (k, v) in parse_kv(rest)? {
                match k {
                    "count" => count = Some(parse_usize(v, "count")?),
                    "per" => per = Some(parse_usize(v, "per")?),
                    "extra" => extra = parse_usize(v, "extra")?,
                    "seed" => seed = parse_u64(v, "seed")?,
                    other => return Err(err(format!("unknown components key `{other}`"))),
                }
            }
            let count = count.ok_or_else(|| err("components needs count=<k>"))?;
            let per = per.ok_or_else(|| err("components needs per=<size>"))?;
            Ok(gen::random_multi_component(count, per, extra, seed))
        }
        other => Err(err(format!(
            "unknown topology `{other}` (try path:N, ring:N, star-in:N, star-out:N, complete:N, tree:LEVELS, random:n=..,extra=.., components:count=..,per=..)"
        ))),
    }
}

/// Parses a scheduler specification.
///
/// # Errors
///
/// Returns [`ParseSpecError`] with the offending fragment.
///
/// # Example
///
/// ```
/// assert!(ard_cli::spec::parse_scheduler("random:42").is_ok());
/// assert!(ard_cli::spec::parse_scheduler("bounded:8,1").is_ok());
/// assert!(ard_cli::spec::parse_scheduler("psychic").is_err());
/// ```
pub fn parse_scheduler(spec: &str) -> Result<Box<dyn Scheduler>, ParseSpecError> {
    let (kind, rest) = spec.split_once(':').unwrap_or((spec, ""));
    match kind.to_ascii_lowercase().as_str() {
        "fifo" => Ok(Box::new(FifoScheduler::new())),
        "lifo" => Ok(Box::new(LifoScheduler::new())),
        "random" => {
            let seed = if rest.is_empty() {
                0
            } else {
                parse_u64(rest, "seed")?
            };
            Ok(Box::new(RandomScheduler::seeded(seed)))
        }
        "bounded" => {
            let (delay, seed) = match rest.split_once(',') {
                Some((d, s)) => (parse_u64(d, "delay")?, parse_u64(s, "seed")?),
                None => (parse_u64(rest, "delay")?, 0),
            };
            if delay == 0 {
                return Err(err("bounded delay must be ≥ 1"));
            }
            Ok(Box::new(BoundedDelayScheduler::new(delay, seed)))
        }
        other => Err(err(format!(
            "unknown scheduler `{other}` (try fifo, lifo, random[:SEED], bounded:DELAY[,SEED])"
        ))),
    }
}

/// Parses a problem-variant name.
///
/// # Errors
///
/// Returns [`ParseSpecError`] for unknown names.
pub fn parse_variant(spec: &str) -> Result<Variant, ParseSpecError> {
    match spec.to_ascii_lowercase().as_str() {
        "oblivious" | "generic" => Ok(Variant::Oblivious),
        "bounded" => Ok(Variant::Bounded),
        "adhoc" | "ad-hoc" => Ok(Variant::AdHoc),
        other => Err(err(format!(
            "unknown variant `{other}` (oblivious, bounded, adhoc)"
        ))),
    }
}

fn parse_prob(s: &str, what: &str) -> Result<f64, ParseSpecError> {
    let p: f64 = s
        .parse()
        .map_err(|_| err(format!("{what}: `{s}` is not a probability")))?;
    if !(0.0..1.0).contains(&p) {
        return Err(err(format!(
            "{what} probability must be in [0, 1), got `{s}`"
        )));
    }
    Ok(p)
}

/// Parses a fault-plan specification such as `drop=0.05,dup=0.02,crash=2`.
///
/// `n` is the network size; `crash=N` spreads `N` crash/restart events
/// evenly over the nodes and the run. Probabilities must lie in `[0, 1)`
/// (the paper's link model: any loss rate strictly below one).
///
/// # Errors
///
/// Returns [`ParseSpecError`] with the offending fragment.
///
/// # Example
///
/// ```
/// let plan = ard_cli::spec::parse_faults("drop=0.1,crash=2,seed=7", 16).unwrap();
/// assert_eq!(plan.crashes.len(), 2);
/// assert!(ard_cli::spec::parse_faults("drop=1.5", 16).is_err());
/// ```
pub fn parse_faults(spec: &str, n: usize) -> Result<FaultPlan, ParseSpecError> {
    let (mut drop, mut dup, mut crash, mut seed) = (0.0, 0.0, 0usize, 0u64);
    for (k, v) in parse_kv(spec)? {
        match k {
            "drop" => drop = parse_prob(v, "drop")?,
            "dup" => dup = parse_prob(v, "dup")?,
            "crash" => crash = parse_usize(v, "crash")?,
            "seed" => seed = parse_u64(v, "seed")?,
            other => {
                return Err(err(format!(
                    "unknown fault key `{other}` (drop, dup, crash, seed)"
                )))
            }
        }
    }
    if crash > 0 && n == 0 {
        return Err(err("crash needs a non-empty network"));
    }
    Ok(FaultPlan::new(seed)
        .with_drop(drop)
        .with_dup(dup)
        .with_spread_crashes(crash, n))
}

/// Parses a Byzantine-plan specification such as `f=2,seed=7` or
/// `f=1,seed=3,class=equivocate`. The same grammar covers the canonical
/// `byzantine` schedule metadata (`f=…,seed=…,classes=a+b+…`), so replay
/// reconstructs a plan from a recorded schedule with this parser.
///
/// `f` is required; `seed` defaults to 0; without a class restriction
/// every fault class is armed.
///
/// # Errors
///
/// Returns [`ParseSpecError`] with the offending fragment.
///
/// # Example
///
/// ```
/// let plan = ard_cli::spec::parse_byzantine("f=1,seed=3,class=equivocate").unwrap();
/// assert!(plan.equivocate && !plan.silence);
/// assert!(ard_cli::spec::parse_byzantine("seed=3").is_err());
/// ```
pub fn parse_byzantine(spec: &str) -> Result<ByzantinePlan, ParseSpecError> {
    let (mut f, mut seed, mut classes) = (None, 0u64, None);
    for (k, v) in parse_kv(spec)? {
        match k {
            "f" => f = Some(parse_usize(v, "f")?),
            "seed" => seed = parse_u64(v, "seed")?,
            "class" | "classes" => classes = Some(v),
            other => {
                return Err(err(format!(
                    "unknown byzantine key `{other}` (f, seed, class)"
                )))
            }
        }
    }
    let f = f.ok_or_else(|| err("byzantine needs f=<count>"))?;
    let mut plan = ByzantinePlan::new(seed, f);
    if let Some(classes) = classes {
        plan.equivocate = false;
        plan.fabricate = false;
        plan.silence = false;
        plan.stale_restart = false;
        for class in classes.split('+') {
            match class {
                "equivocate" => plan.equivocate = true,
                "fabricate" => plan.fabricate = true,
                "silence" => plan.silence = true,
                "stale-restart" => plan.stale_restart = true,
                "all" => {
                    plan.equivocate = true;
                    plan.fabricate = true;
                    plan.silence = true;
                    plan.stale_restart = true;
                }
                other => {
                    return Err(err(format!(
                        "unknown byzantine class `{other}` (equivocate, fabricate, silence, stale-restart, all)"
                    )))
                }
            }
        }
    }
    Ok(plan)
}

/// Parses a churn-plan specification such as `rate=0.1,seed=5` — also the
/// canonical `churn` schedule metadata.
///
/// # Errors
///
/// Returns [`ParseSpecError`] with the offending fragment.
///
/// # Example
///
/// ```
/// let plan = ard_cli::spec::parse_churn("rate=0.25,seed=5").unwrap();
/// assert_eq!(plan.rate, 0.25);
/// assert!(ard_cli::spec::parse_churn("rate=0.7").is_err());
/// ```
pub fn parse_churn(spec: &str) -> Result<ChurnPlan, ParseSpecError> {
    let (mut rate, mut seed) = (None, 0u64);
    for (k, v) in parse_kv(spec)? {
        match k {
            "rate" => {
                rate = Some(
                    v.parse::<f64>()
                        .map_err(|_| err(format!("rate: `{v}` is not a number")))?,
                )
            }
            "seed" => seed = parse_u64(v, "seed")?,
            other => return Err(err(format!("unknown churn key `{other}` (rate, seed)"))),
        }
    }
    let rate = rate.ok_or_else(|| err("churn needs rate=<fraction>"))?;
    if !(0.0..=0.5).contains(&rate) {
        return Err(err(format!(
            "churn rate must be in [0, 0.5] (joiners and leavers are disjoint), got `{rate}`"
        )));
    }
    Ok(ChurnPlan::new(seed, rate))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topologies_parse() {
        assert_eq!(parse_topology("path:5").unwrap().len(), 5);
        assert_eq!(parse_topology("ring:6").unwrap().edge_count(), 6);
        assert_eq!(parse_topology("tree:3").unwrap().len(), 7);
        assert_eq!(parse_topology("COMPLETE:4").unwrap().edge_count(), 12);
        assert_eq!(parse_topology("star-in:9").unwrap().len(), 9);
        let g = parse_topology("random:n=20,extra=10,seed=3").unwrap();
        assert_eq!(g.len(), 20);
        assert_eq!(g.edge_count(), 29);
        let g = parse_topology("components:count=2,per=5").unwrap();
        assert_eq!(g.len(), 10);
    }

    #[test]
    fn topology_errors_are_descriptive() {
        assert!(parse_topology("random:extra=5")
            .unwrap_err()
            .0
            .contains("needs n="));
        assert!(parse_topology("path:x")
            .unwrap_err()
            .0
            .contains("not a number"));
        assert!(parse_topology("nope:1")
            .unwrap_err()
            .0
            .contains("unknown topology"));
        assert!(parse_topology("random:n=5,bogus=1")
            .unwrap_err()
            .0
            .contains("unknown random-graph key"));
        assert!(parse_topology("tree:0").is_err());
    }

    #[test]
    fn schedulers_parse() {
        for spec in [
            "fifo",
            "lifo",
            "random",
            "random:9",
            "bounded:4",
            "bounded:4,2",
        ] {
            assert!(parse_scheduler(spec).is_ok(), "{spec}");
        }
        assert!(parse_scheduler("bounded:0").is_err());
        assert!(parse_scheduler("warp").is_err());
    }

    #[test]
    fn faults_parse() {
        let plan = parse_faults("drop=0.1,dup=0.05,crash=3,seed=9", 12).unwrap();
        assert_eq!(plan.drop, 0.1);
        assert_eq!(plan.dup, 0.05);
        assert_eq!(plan.crashes.len(), 3);
        assert_eq!(plan.seed, 9);
        assert!(parse_faults("drop=0.2", 8).unwrap().crashes.is_empty());
        assert!(parse_faults("", 8).unwrap().is_vacuous());
    }

    #[test]
    fn fault_errors_are_descriptive() {
        assert!(parse_faults("drop=1.0", 8)
            .unwrap_err()
            .0
            .contains("must be in [0, 1)"));
        assert!(parse_faults("dup=-0.1", 8).is_err());
        assert!(parse_faults("drop=x", 8)
            .unwrap_err()
            .0
            .contains("not a probability"));
        assert!(parse_faults("mangle=0.5", 8)
            .unwrap_err()
            .0
            .contains("unknown fault key"));
        assert!(parse_faults("crash=1", 0).is_err());
    }

    #[test]
    fn byzantine_plans_parse() {
        let plan = parse_byzantine("f=2,seed=7").unwrap();
        assert_eq!((plan.f, plan.seed), (2, 7));
        assert!(plan.equivocate && plan.fabricate && plan.silence && plan.stale_restart);
        let plan = parse_byzantine("f=1,seed=3,class=equivocate").unwrap();
        assert!(plan.equivocate && !plan.fabricate && !plan.silence && !plan.stale_restart);
        // The canonical schedule-metadata form round-trips through the
        // same parser.
        let plan = parse_byzantine("f=2,seed=7,classes=silence+stale-restart").unwrap();
        assert!(!plan.equivocate && !plan.fabricate && plan.silence && plan.stale_restart);
        assert!(parse_byzantine("f=1,classes=all").unwrap().equivocate);
        assert!(parse_byzantine("seed=3").unwrap_err().0.contains("needs f="));
        assert!(parse_byzantine("f=1,class=sneaky")
            .unwrap_err()
            .0
            .contains("unknown byzantine class"));
        assert!(parse_byzantine("f=1,mode=loud")
            .unwrap_err()
            .0
            .contains("unknown byzantine key"));
    }

    #[test]
    fn churn_plans_parse() {
        let plan = parse_churn("rate=0.25,seed=5").unwrap();
        assert_eq!((plan.rate, plan.seed), (0.25, 5));
        assert_eq!(parse_churn("rate=0").unwrap().seed, 0);
        assert!(parse_churn("seed=5").unwrap_err().0.contains("needs rate="));
        assert!(parse_churn("rate=0.7")
            .unwrap_err()
            .0
            .contains("must be in [0, 0.5]"));
        assert!(parse_churn("rate=0.1,burst=2")
            .unwrap_err()
            .0
            .contains("unknown churn key"));
    }

    #[test]
    fn variants_parse() {
        assert_eq!(parse_variant("adhoc").unwrap(), Variant::AdHoc);
        assert_eq!(parse_variant("AD-HOC").unwrap(), Variant::AdHoc);
        assert_eq!(parse_variant("generic").unwrap(), Variant::Oblivious);
        assert_eq!(parse_variant("bounded").unwrap(), Variant::Bounded);
        assert!(parse_variant("x").is_err());
    }
}
