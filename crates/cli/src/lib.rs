//! Library backing the `ard` command-line tool.
//!
//! The binary is a thin wrapper over [`commands::run`], which parses a
//! subcommand plus `--key value` flags and returns the report text — making
//! the whole CLI unit-testable.
//!
//! ```text
//! ard discover --topology random:n=128,extra=256 --variant adhoc --scheduler random:7
//! ard adversary --levels 10
//! ard reduction --sets 128 --finds 64 --adversarial
//! ard overlay --n 128 --lookups 200
//! ard baselines --n 128
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod commands;
pub mod spec;
