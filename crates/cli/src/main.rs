//! The `ard` command-line tool; see `ard help`.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match ard_cli::commands::run(&args) {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
