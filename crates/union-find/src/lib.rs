//! The classic Union–Find problem, as it appears in *Asynchronous Resource
//! Discovery* (Abraham & Dolev, PODC 2003).
//!
//! The paper proves its Ad-hoc Resource Discovery bound by a two-way
//! connection to disjoint sets:
//!
//! * **Upper bound** (Lemma 5.6): the algorithm's `search`/`release`
//!   computations simulate a sequential execution of Tarjan's union/find
//!   with path compression, so Tarjan & van Leeuwen's `O(n·α(n,n))` analysis
//!   bounds the message count.
//! * **Lower bound** (Lemma 3.1 / Theorem 2): any `h(n)`-message Ad-hoc
//!   algorithm yields an `h(2n−1+m)`-time union-find algorithm on a pointer
//!   machine with the separation property, so Tarjan's `Ω(n·α(n,n))` lower
//!   bound transfers.
//!
//! This crate provides the data structure ([`UnionFind`], with the
//! by-rank/compression policy knobs used by the reproduction's ablations),
//! the paper's exact inverse-Ackermann definition ([`alpha`]), and
//! generators for union/find operation sequences ([`OpSequence`]) used to
//! drive the Theorem 2 reduction experiment.
//!
//! # Example
//!
//! ```
//! use ard_union_find::{alpha, UnionFind};
//!
//! let mut uf = UnionFind::new(4);
//! uf.union(0, 1);
//! uf.union(2, 3);
//! assert!(uf.same_set(0, 1));
//! assert!(!uf.same_set(1, 2));
//! assert_eq!(uf.set_count(), 2);
//!
//! // α grows absurdly slowly: it is ≤ 4 for any remotely feasible input.
//! assert!(alpha(1_000_000, 1_000_000) <= 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ackermann;
mod dsu;
mod ops;

pub use ackermann::{ackermann, alpha};
pub use dsu::{Compression, UnionFind, UnionPolicy};
pub use ops::{Op, OpSequence};
