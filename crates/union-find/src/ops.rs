//! Union/find operation sequences.
//!
//! The Theorem 2 reduction turns a sequence of `n − 1` unions and `m` finds
//! into a knowledge graph plus a wake-up schedule; this module generates and
//! validates such sequences. Sequences guarantee the paper's precondition
//! that every `U(i, j)` unites two sets that are disjoint at that point.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::UnionFind;

/// One union/find operation over a universe of `n` initial singletons.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// `U(i, j)`: unite the sets currently containing elements `i` and `j`
    /// (which are guaranteed disjoint at this point in the sequence).
    Union(usize, usize),
    /// `F(i)`: find the representative of the set containing element `i`.
    Find(usize),
}

/// A validated sequence of union/find operations over `n` elements.
///
/// # Example
///
/// ```
/// use ard_union_find::{Op, OpSequence, UnionFind};
///
/// let seq = OpSequence::random(16, 10, 42);
/// assert_eq!(seq.n(), 16);
/// assert_eq!(seq.union_count(), 15); // fully merges the universe
/// assert_eq!(seq.find_count(), 10);
///
/// let mut uf = UnionFind::new(16);
/// seq.run(&mut uf);
/// assert_eq!(uf.set_count(), 1);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OpSequence {
    n: usize,
    ops: Vec<Op>,
}

impl OpSequence {
    /// Wraps a hand-built sequence, validating the union-disjointness
    /// precondition and index ranges.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range or a union's arguments are already
    /// in the same set when it executes.
    pub fn new(n: usize, ops: Vec<Op>) -> Self {
        let mut shadow = UnionFind::new(n);
        for op in &ops {
            match *op {
                Op::Union(i, j) => {
                    assert!(i < n && j < n, "union argument out of range");
                    assert!(
                        shadow.union(i, j),
                        "invalid sequence: U({i},{j}) unites an already-joined pair"
                    );
                }
                Op::Find(i) => {
                    assert!(i < n, "find argument out of range");
                }
            }
        }
        OpSequence { n, ops }
    }

    /// Universe size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The operations, in order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Number of union operations.
    pub fn union_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, Op::Union(..)))
            .count()
    }

    /// Number of find operations.
    pub fn find_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, Op::Find(_)))
            .count()
    }

    /// Total operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Executes the sequence against a [`UnionFind`].
    ///
    /// # Panics
    ///
    /// Panics if `uf.len() != self.n()` or a union precondition fails
    /// (cannot happen for a sequence built by this module's constructors).
    pub fn run(&self, uf: &mut UnionFind) {
        assert_eq!(uf.len(), self.n, "universe size mismatch");
        for op in &self.ops {
            match *op {
                Op::Union(i, j) => {
                    assert!(uf.union(i, j), "union precondition violated");
                }
                Op::Find(i) => {
                    uf.find(i);
                }
            }
        }
    }

    /// A random valid sequence: `n − 1` unions (drawn between two random
    /// distinct current sets) fully merging the universe, with `finds`
    /// random finds interleaved uniformly. Deterministic in `seed`.
    pub fn random(n: usize, finds: usize, seed: u64) -> Self {
        assert!(n >= 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut shadow = UnionFind::new(n);
        let mut roots: Vec<usize> = (0..n).collect();
        let total = (n - 1) + finds;
        let mut unions_left = n - 1;
        let mut finds_left = finds;
        let mut ops = Vec::with_capacity(total);
        for _ in 0..total {
            // Choose op kind proportionally to what remains, so finds are
            // spread across the whole sequence.
            let pick_union = rng.gen_range(0..unions_left + finds_left) < unions_left;
            if pick_union {
                let a = rng.gen_range(0..roots.len());
                let mut b = rng.gen_range(0..roots.len() - 1);
                if b >= a {
                    b += 1;
                }
                let (ra, rb) = (roots[a], roots[b]);
                ops.push(Op::Union(ra, rb));
                shadow.union(ra, rb);
                let merged_root = shadow.find(ra);
                // Keep `roots` = one representative per current set.
                let drop = if merged_root == shadow.find_immutable(roots[a]) {
                    b
                } else {
                    a
                };
                // Both entries now share a root; remove one of the pair.
                let _ = drop;
                let (hi, lo) = if a > b { (a, b) } else { (b, a) };
                roots.swap_remove(hi);
                roots[lo] = merged_root;
                unions_left -= 1;
            } else {
                ops.push(Op::Find(rng.gen_range(0..n)));
                finds_left -= 1;
            }
        }
        OpSequence { n, ops }
    }

    /// An adversarial sequence: unions build a binomial-tree-like structure
    /// (pairing sets of equal size round by round), and after each round a
    /// batch of finds probes the elements that are deepest for structures
    /// without path compression. `n` is rounded down to a power of two.
    ///
    /// Against naive variants this forces `Θ(log n)`-deep trees and
    /// super-linear total work; against the optimal structure it stays
    /// near-linear — exactly the contrast the reproduction's ablations show.
    pub fn adversarial_deep(n: usize, finds_per_round: usize) -> Self {
        assert!(n >= 1);
        let n = if n.is_power_of_two() {
            n
        } else {
            n.next_power_of_two() / 2
        };
        let mut ops = Vec::new();
        let mut stride = 1;
        while stride < n {
            for base in (0..n).step_by(2 * stride) {
                // Link the head of each block pair; with naive linking the
                // left block's root ends up one level deeper each round.
                ops.push(Op::Union(base, base + stride));
            }
            for k in 0..finds_per_round {
                // Probe the high-index region: element n−1 and its
                // neighbours sit at depth ≈ round-number in the binomial
                // forest, for by-rank and naive linking alike.
                let target = n - 1 - (k % (2 * stride));
                ops.push(Op::Find(target));
            }
            stride *= 2;
        }
        OpSequence::new(n, ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Compression, UnionPolicy};

    #[test]
    fn random_sequences_are_valid_and_seeded() {
        for seed in 0..10 {
            let seq = OpSequence::random(32, 20, seed);
            assert_eq!(seq.union_count(), 31);
            assert_eq!(seq.find_count(), 20);
            // `new` re-validates.
            let revalidated = OpSequence::new(seq.n(), seq.ops().to_vec());
            assert_eq!(revalidated, seq);
        }
        assert_eq!(OpSequence::random(16, 4, 5), OpSequence::random(16, 4, 5));
    }

    #[test]
    fn random_sequence_fully_merges() {
        let seq = OpSequence::random(64, 0, 1);
        let mut uf = UnionFind::new(64);
        seq.run(&mut uf);
        assert_eq!(uf.set_count(), 1);
    }

    #[test]
    #[should_panic(expected = "already-joined")]
    fn duplicate_union_rejected() {
        OpSequence::new(3, vec![Op::Union(0, 1), Op::Union(1, 0)]);
    }

    #[test]
    fn singleton_universe() {
        let seq = OpSequence::random(1, 3, 0);
        assert_eq!(seq.union_count(), 0);
        assert_eq!(seq.find_count(), 3);
    }

    #[test]
    fn adversarial_is_valid_and_merges() {
        let seq = OpSequence::adversarial_deep(64, 8);
        assert_eq!(seq.union_count(), 63);
        let mut uf = UnionFind::new(64);
        seq.run(&mut uf);
        assert_eq!(uf.set_count(), 1);
    }

    #[test]
    fn adversarial_rounds_down_to_power_of_two() {
        let seq = OpSequence::adversarial_deep(100, 2);
        assert_eq!(seq.n(), 64);
    }

    #[test]
    fn adversarial_hurts_naive_more_than_optimal() {
        let seq = OpSequence::adversarial_deep(1 << 12, 1 << 10);
        let mut best = UnionFind::new(seq.n());
        let mut worst = UnionFind::with_policies(seq.n(), UnionPolicy::Naive, Compression::Off);
        seq.run(&mut best);
        seq.run(&mut worst);
        assert!(
            best.traversals() * 2 < worst.traversals(),
            "optimal {} vs naive {}",
            best.traversals(),
            worst.traversals()
        );
    }
}
