//! Ackermann's function and its inverse, exactly as defined in the paper:
//!
//! > α(m, n) = min{ i ≥ 1 | A(i, ⌊m/n⌋) > log n }, where for m = 0:
//! > A(0, n) = n + 1; for m > 0, n = 0: A(m, 0) = A(m − 1, 1); for
//! > m > 0, n > 0: A(m, n) = A(m − 1, A(m, n − 1)).

/// Values above this are treated as "infinite"; `A` explodes so fast that a
/// saturating cap loses nothing for computing `α` on any feasible input.
const CAP: u64 = 1 << 60;

/// Ackermann's function `A(i, j)`, saturating at `2^60`.
///
/// Closed forms are used for the first rows (`A(0,j) = j+1`, `A(1,j) = j+2`,
/// `A(2,j) = 2j+3`, `A(3,j) = 2^(j+3) − 3`); higher rows recurse and
/// saturate almost immediately.
///
/// # Example
///
/// ```
/// use ard_union_find::ackermann;
///
/// assert_eq!(ackermann(0, 5), 6);
/// assert_eq!(ackermann(1, 5), 7);
/// assert_eq!(ackermann(2, 5), 13);
/// assert_eq!(ackermann(3, 2), 29);
/// assert_eq!(ackermann(4, 0), 13);
/// ```
pub fn ackermann(i: u64, j: u64) -> u64 {
    match i {
        0 => (j + 1).min(CAP),
        1 => (j + 2).min(CAP),
        2 => (2 * j + 3).min(CAP),
        3 => {
            if j + 3 >= 60 {
                CAP
            } else {
                (1u64 << (j + 3)) - 3
            }
        }
        _ => {
            // A(i, 0) = A(i−1, 1); A(i, j) = A(i−1, A(i, j−1)).
            let mut value = ackermann(i - 1, 1);
            for _ in 0..j {
                if value >= CAP {
                    return CAP;
                }
                value = ackermann(i - 1, value);
            }
            value
        }
    }
}

/// The paper's inverse Ackermann function `α(m, n)`.
///
/// `α(m, n) = min{ i ≥ 1 | A(i, ⌊m/n⌋) > log₂ n }`. For `n ≤ 1` (where
/// `log n ≤ 0` and any row exceeds it) the result is `1`.
///
/// # Panics
///
/// Panics if `n == 0` with `m > 0` (the ratio `m/n` is undefined).
///
/// # Example
///
/// ```
/// use ard_union_find::alpha;
///
/// assert_eq!(alpha(4, 4), 1);           // A(1, 1) = 3 > log₂ 4 = 2
/// assert!(alpha(1 << 20, 1 << 20) <= 4);
/// assert!(alpha(u64::MAX / 2, 4) == 1); // huge m/n ratio: first row suffices
/// ```
pub fn alpha(m: u64, n: u64) -> u64 {
    if n <= 1 {
        return 1;
    }
    let ratio = m / n;
    let log_n = 63 - n.leading_zeros() as u64; // ⌊log₂ n⌋
    let mut i = 1;
    loop {
        if ackermann(i, ratio) > log_n {
            return i;
        }
        i += 1;
        debug_assert!(i < 16, "alpha should never be this large");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_zero_is_successor() {
        for j in 0..10 {
            assert_eq!(ackermann(0, j), j + 1);
        }
    }

    #[test]
    fn rows_match_textbook_values() {
        // Verify the closed forms against the raw recurrence for small args.
        fn naive(i: u64, j: u64) -> u64 {
            match (i, j) {
                (0, j) => j + 1,
                (i, 0) => naive(i - 1, 1),
                (i, j) => naive(i - 1, naive(i, j - 1)),
            }
        }
        for i in 0..4 {
            for j in 0..5 {
                assert_eq!(ackermann(i, j), naive(i, j), "A({i},{j})");
            }
        }
        assert_eq!(ackermann(4, 0), naive(3, 1));
    }

    #[test]
    fn explosion_saturates() {
        assert_eq!(ackermann(4, 2), super::CAP);
        assert_eq!(ackermann(5, 5), super::CAP);
        assert_eq!(ackermann(3, 100), super::CAP);
    }

    #[test]
    fn alpha_is_tiny_for_all_feasible_inputs() {
        for exp in 1..60 {
            let n = 1u64 << exp;
            let a = alpha(n, n);
            assert!((1..=4).contains(&a), "alpha({n},{n}) = {a}");
        }
        // α(n, n) with ratio 1: A(1,1)=3, A(2,1)=5, A(3,1)=13, A(4,1)=65533.
        assert_eq!(alpha(1 << 2, 1 << 2), 1);
        assert_eq!(alpha(1 << 4, 1 << 4), 2);
        assert_eq!(alpha(1 << 12, 1 << 12), 3);
        assert_eq!(alpha(1 << 13, 1 << 13), 4);
    }

    #[test]
    fn alpha_decreases_in_m() {
        // More operations per element can only lower (or keep) α.
        let n = 1 << 16;
        let lo = alpha(n, n);
        let hi = alpha(64 * n, n);
        assert!(hi <= lo);
    }

    #[test]
    fn alpha_handles_degenerate_n() {
        assert_eq!(alpha(0, 1), 1);
        assert_eq!(alpha(10, 1), 1);
        assert_eq!(alpha(0, 0), 1);
    }
}
