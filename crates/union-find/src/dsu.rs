use std::fmt;

/// How [`UnionFind::union`] links two roots.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum UnionPolicy {
    /// Link the lower-rank root under the higher-rank root (Tarjan's union
    /// by rank). Required for the `O(α)` bound.
    #[default]
    ByRank,
    /// Link the smaller set under the larger (union by size) — the other
    /// classic balanced policy, also `O(α)` with compression.
    BySize,
    /// Always link the first argument's root under the second's. Worst-case
    /// linear trees; used by the reproduction's ablations.
    Naive,
}

/// How [`UnionFind::find`] restructures the path it traverses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Compression {
    /// Full path compression: every traversed node is re-pointed at the
    /// root. Required for the `O(α)` bound.
    #[default]
    Full,
    /// Path halving: every traversed node is re-pointed at its grandparent.
    /// Also achieves `O(α)`, with cheaper constant factors.
    Halving,
    /// No restructuring. Used by the reproduction's ablations.
    Off,
}

/// Tarjan's disjoint-set forest.
///
/// With the default policies (union by rank + full path compression) a
/// sequence of `m` operations on `n` elements costs `O(m·α(m, n))` pointer
/// traversals — the bound the paper's Ad-hoc algorithm inherits. The
/// [`traversals`](UnionFind::traversals) counter exposes the actual pointer
/// work so the reproduction can compare data-structure cost curves against
/// the distributed algorithm's message curves.
///
/// # Example
///
/// ```
/// use ard_union_find::UnionFind;
///
/// let mut uf = UnionFind::new(5);
/// assert!(uf.union(0, 1));
/// assert!(uf.union(3, 4));
/// assert!(!uf.union(1, 0)); // already joined
/// assert_eq!(uf.set_count(), 3);
/// assert_eq!(uf.find(1), uf.find(0));
/// ```
#[derive(Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u32>,
    size: Vec<u32>,
    sets: usize,
    union_policy: UnionPolicy,
    compression: Compression,
    traversals: u64,
}

impl UnionFind {
    /// Creates `n` singleton sets with the default (optimal) policies.
    pub fn new(n: usize) -> Self {
        Self::with_policies(n, UnionPolicy::ByRank, Compression::Full)
    }

    /// Creates `n` singleton sets with explicit policies (for ablations).
    pub fn with_policies(n: usize, union_policy: UnionPolicy, compression: Compression) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
            size: vec![1; n],
            sets: n,
            union_policy,
            compression,
            traversals: 0,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether there are no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets remaining.
    pub fn set_count(&self) -> usize {
        self.sets
    }

    /// Total parent-pointer traversals performed by all operations so far —
    /// the data structure's analogue of the distributed algorithm's
    /// `search`/`release` message count.
    pub fn traversals(&self) -> u64 {
        self.traversals
    }

    /// Adds a fresh singleton, returning its index.
    pub fn push(&mut self) -> usize {
        let i = self.parent.len();
        self.parent.push(i);
        self.rank.push(0);
        self.size.push(1);
        self.sets += 1;
        i
    }

    /// Size of the set containing `x`.
    pub fn set_size(&mut self, x: usize) -> usize {
        let root = self.find(x);
        self.size[root] as usize
    }

    /// Enumerates the current sets, each as a sorted list of elements;
    /// sets ordered by smallest member.
    pub fn sets(&mut self) -> Vec<Vec<usize>> {
        use std::collections::BTreeMap;
        let mut by_root: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for x in 0..self.parent.len() {
            let root = self.find(x);
            by_root.entry(root).or_default().push(x);
        }
        let mut out: Vec<Vec<usize>> = by_root.into_values().collect();
        out.sort_by_key(|set| set[0]);
        out
    }

    /// Returns the representative of `x`'s set, applying the configured
    /// compression policy.
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of range.
    pub fn find(&mut self, x: usize) -> usize {
        assert!(x < self.parent.len(), "element {x} out of range");
        match self.compression {
            Compression::Full => {
                // First pass: find the root.
                let mut root = x;
                while self.parent[root] != root {
                    self.traversals += 1;
                    root = self.parent[root];
                }
                // Second pass: point everything at it.
                let mut cur = x;
                while self.parent[cur] != root {
                    let next = self.parent[cur];
                    self.parent[cur] = root;
                    cur = next;
                }
                root
            }
            Compression::Halving => {
                let mut cur = x;
                while self.parent[cur] != cur {
                    self.traversals += 1;
                    self.parent[cur] = self.parent[self.parent[cur]];
                    cur = self.parent[cur];
                }
                cur
            }
            Compression::Off => {
                let mut cur = x;
                while self.parent[cur] != cur {
                    self.traversals += 1;
                    cur = self.parent[cur];
                }
                cur
            }
        }
    }

    /// The representative of `x`'s set without restructuring or counting
    /// (for assertions and oracles).
    pub fn find_immutable(&self, x: usize) -> usize {
        let mut cur = x;
        while self.parent[cur] != cur {
            cur = self.parent[cur];
        }
        cur
    }

    /// Whether `x` and `y` are currently in the same set.
    pub fn same_set(&mut self, x: usize, y: usize) -> bool {
        self.find(x) == self.find(y)
    }

    /// Merges the sets containing `x` and `y`. Returns `false` if they were
    /// already the same set.
    pub fn union(&mut self, x: usize, y: usize) -> bool {
        let rx = self.find(x);
        let ry = self.find(y);
        if rx == ry {
            return false;
        }
        self.sets -= 1;
        let merged_size = self.size[rx] + self.size[ry];
        let new_root = match self.union_policy {
            UnionPolicy::ByRank => {
                if self.rank[rx] < self.rank[ry] {
                    self.parent[rx] = ry;
                    ry
                } else if self.rank[rx] > self.rank[ry] {
                    self.parent[ry] = rx;
                    rx
                } else {
                    self.parent[ry] = rx;
                    self.rank[rx] += 1;
                    rx
                }
            }
            UnionPolicy::BySize => {
                if self.size[rx] < self.size[ry] {
                    self.parent[rx] = ry;
                    ry
                } else {
                    self.parent[ry] = rx;
                    rx
                }
            }
            UnionPolicy::Naive => {
                self.parent[rx] = ry;
                ry
            }
        };
        self.size[new_root] = merged_size;
        true
    }

    /// Depth of `x` in its tree (root has depth 0); diagnostic only.
    pub fn depth(&self, x: usize) -> usize {
        let mut cur = x;
        let mut d = 0;
        while self.parent[cur] != cur {
            cur = self.parent[cur];
            d += 1;
        }
        d
    }
}

impl fmt::Debug for UnionFind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "UnionFind(n={}, sets={}, policy={:?}/{:?})",
            self.len(),
            self.sets,
            self.union_policy,
            self.compression
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_are_disjoint() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.set_count(), 4);
        for i in 0..4 {
            assert_eq!(uf.find(i), i);
        }
        assert!(!uf.same_set(0, 3));
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(6);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2));
        assert_eq!(uf.set_count(), 4);
        assert!(uf.same_set(0, 2));
        assert!(!uf.same_set(0, 3));
    }

    #[test]
    fn push_adds_singleton() {
        let mut uf = UnionFind::new(2);
        let c = uf.push();
        assert_eq!(c, 2);
        assert_eq!(uf.set_count(), 3);
        uf.union(0, c);
        assert!(uf.same_set(0, 2));
    }

    #[test]
    fn full_compression_flattens() {
        let mut uf = UnionFind::with_policies(8, UnionPolicy::Naive, Compression::Full);
        // Chain: 0 under 1 under 2 under ... (naive unions make a path)
        for i in 0..7 {
            uf.union(i, i + 1);
        }
        assert!(uf.depth(0) > 1);
        uf.find(0);
        assert_eq!(uf.depth(0), 1);
    }

    #[test]
    fn naive_without_compression_builds_deep_trees() {
        let n = 64;
        let mut uf = UnionFind::with_policies(n, UnionPolicy::Naive, Compression::Off);
        for i in 0..n - 1 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.depth(0), n - 1);
    }

    #[test]
    fn by_rank_keeps_trees_shallow() {
        let n = 1024;
        let mut uf = UnionFind::with_policies(n, UnionPolicy::ByRank, Compression::Off);
        for i in 0..n - 1 {
            uf.union(i, i + 1);
        }
        // Union by rank alone bounds depth by log₂ n.
        for i in 0..n {
            assert!(uf.depth(i) <= 10, "depth({i}) = {}", uf.depth(i));
        }
    }

    #[test]
    fn halving_shortens_paths() {
        let mut uf = UnionFind::with_policies(16, UnionPolicy::Naive, Compression::Halving);
        for i in 0..15 {
            uf.union(i, i + 1);
        }
        let before = uf.depth(0);
        uf.find(0);
        assert!(uf.depth(0) < before);
    }

    #[test]
    fn traversals_reflect_compression() {
        let build = |compression| {
            let n = 4096;
            let mut uf = UnionFind::with_policies(n, UnionPolicy::Naive, compression);
            for i in 0..n - 1 {
                uf.union(i, i + 1);
            }
            for _ in 0..4 {
                for i in 0..n {
                    uf.find(i);
                }
            }
            uf.traversals()
        };
        let with = build(Compression::Full);
        let without = build(Compression::Off);
        assert!(
            with * 4 < without,
            "compression should dramatically cut traversals: {with} vs {without}"
        );
    }

    #[test]
    fn find_immutable_agrees_with_find() {
        let mut uf = UnionFind::new(10);
        uf.union(1, 2);
        uf.union(2, 3);
        uf.union(7, 8);
        for i in 0..10 {
            assert_eq!(uf.find_immutable(i), uf.clone().find(i));
        }
    }
}

#[cfg(test)]
mod size_tests {
    use super::*;

    #[test]
    fn by_size_keeps_trees_shallow() {
        let n = 1024;
        let mut uf = UnionFind::with_policies(n, UnionPolicy::BySize, Compression::Off);
        for i in 0..n - 1 {
            uf.union(i, i + 1);
        }
        for i in 0..n {
            assert!(uf.depth(i) <= 10, "depth({i}) = {}", uf.depth(i));
        }
    }

    #[test]
    fn set_size_tracks_merges() {
        let mut uf = UnionFind::new(6);
        assert_eq!(uf.set_size(0), 1);
        uf.union(0, 1);
        uf.union(2, 3);
        uf.union(0, 2);
        assert_eq!(uf.set_size(3), 4);
        assert_eq!(uf.set_size(4), 1);
    }

    #[test]
    fn set_size_tracked_under_all_policies() {
        for policy in [UnionPolicy::ByRank, UnionPolicy::BySize, UnionPolicy::Naive] {
            let mut uf = UnionFind::with_policies(8, policy, Compression::Full);
            uf.union(0, 1);
            uf.union(1, 2);
            uf.union(5, 6);
            assert_eq!(uf.set_size(2), 3, "{policy:?}");
            assert_eq!(uf.set_size(6), 2, "{policy:?}");
        }
    }

    #[test]
    fn sets_enumerates_partition() {
        let mut uf = UnionFind::new(5);
        uf.union(0, 3);
        uf.union(1, 4);
        let sets = uf.sets();
        assert_eq!(sets, vec![vec![0, 3], vec![1, 4], vec![2]]);
    }

    #[test]
    fn push_after_unions_is_singleton() {
        let mut uf = UnionFind::new(2);
        uf.union(0, 1);
        let c = uf.push();
        assert_eq!(uf.set_size(c), 1);
        assert_eq!(uf.sets().len(), 2);
    }
}
